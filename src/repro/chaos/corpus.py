"""The minimal-repro corpus: failures, frozen as regression tests.

Every shrunk failure serializes to one small JSON file — the scenario
(config overrides + exact fault spec + seed), the failure class it
exhibited when found, and the shrink accounting.  The pytest harness
(``tests/test_chaos_corpus.py``) replays every entry under strict
checks and expects it to *pass*: a corpus entry documents a bug that has
been fixed, and replaying green proves it stays fixed.

Entries with ``expected_failure: "pass"`` are *sentinels*: hairy
scenarios from past sweeps checked in as determinism anchors, so the
replay harness exercises the oracles even when no bug is outstanding.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Tuple

from ..faults import FaultPlan, FaultSpecError
from .oracles import CHAOS_EVENT_BUDGET, OracleVerdict, check_scenario
from .scenario import Scenario

__all__ = ["CorpusFormatError", "corpus_entry", "entry_filename",
           "load_corpus", "replay_entry", "save_entry", "validate_entry"]

_SCHEMA = 1

#: Every top-level field this version of the code knows how to honour.
#: Forward compatibility is *loud*: an entry written by a newer repro
#: (extra fields, higher schema, unknown fault kind) is refused with a
#: clear error naming the entry, never silently half-replayed.
_KNOWN_FIELDS = frozenset({
    "schema", "expected_failure", "error_type", "message", "scenario",
    "master_seed", "trial_index", "shrink", "note", "relation"})
_KNOWN_SCENARIO_FIELDS = frozenset({"seed", "faults", "config", "tcp"})


class CorpusFormatError(ValueError):
    """A corpus entry this version of the code cannot faithfully replay."""


def corpus_entry(scenario: Scenario, verdict: OracleVerdict,
                 master_seed: Optional[int] = None,
                 trial_index: Optional[int] = None,
                 shrink_info: Optional[Dict[str, object]] = None,
                 note: str = "",
                 relation: Optional[str] = None) -> Dict[str, object]:
    """Build the JSON-able corpus record for one (minimal) scenario.

    ``relation`` marks a differential repro: replay re-checks the
    metamorphic relation instead of the single-run oracle stack.
    """
    entry = {
        "schema": _SCHEMA,
        "expected_failure": verdict.status,   # failure class when found
        "error_type": verdict.error_type,
        "message": verdict.message,
        "scenario": scenario.to_dict(),
        "master_seed": master_seed,
        "trial_index": trial_index,
        "shrink": dict(shrink_info or {}),
        "note": note,
    }
    if relation is not None:
        entry["relation"] = relation
    return entry


def validate_entry(entry: Dict[str, object],
                   name: str = "<entry>") -> None:
    """Refuse entries this code cannot faithfully replay.

    Raises :class:`CorpusFormatError` (a ``ValueError``) naming the
    entry for: a schema newer than ours, unknown top-level or scenario
    fields, an unknown fault kind or malformed fault spec, and an
    unknown differential relation.
    """
    schema = entry.get("schema")
    if isinstance(schema, (int, float)) and schema > _SCHEMA:
        raise CorpusFormatError(
            f"{name}: schema {schema} is newer than this code's "
            f"{_SCHEMA}; upgrade repro to replay it")
    unknown = sorted(set(entry) - _KNOWN_FIELDS)
    if unknown:
        raise CorpusFormatError(
            f"{name}: unknown corpus field(s) {', '.join(unknown)} "
            f"(written by a newer repro?)")
    scenario = entry.get("scenario")
    if not isinstance(scenario, dict):
        raise CorpusFormatError(f"{name}: no scenario object to replay")
    unknown = sorted(set(scenario) - _KNOWN_SCENARIO_FIELDS)
    if unknown:
        raise CorpusFormatError(
            f"{name}: unknown scenario field(s) {', '.join(unknown)} "
            f"(written by a newer repro?)")
    faults = scenario.get("faults")
    if faults is not None:
        try:
            FaultPlan.parse(str(faults))
        except FaultSpecError as exc:
            raise CorpusFormatError(
                f"{name}: cannot replay fault spec {faults!r}: {exc}")
    relation = entry.get("relation")
    if relation is not None:
        from .differential import RELATION_NAMES
        if relation not in RELATION_NAMES:
            raise CorpusFormatError(
                f"{name}: unknown differential relation {relation!r} "
                f"(this code knows: {', '.join(RELATION_NAMES)})")


def entry_filename(entry: Dict[str, object]) -> str:
    """Deterministic, self-describing file name for a corpus entry."""
    scenario = Scenario.from_dict(entry["scenario"])  # type: ignore[arg-type]
    return (f"{entry.get('expected_failure', 'pass')}-"
            f"{scenario.digest()}-s{scenario.seed}.json")


def save_entry(entry: Dict[str, object], corpus_dir: str) -> str:
    """Write one entry (pretty-printed, stable key order); returns path.

    The write is atomic (temp file + rename) so a repro entry can never
    be observed half-written — parallel chaos workers may be SIGKILLed
    mid-campaign and their retry rewrites the same deterministic name.
    """
    os.makedirs(corpus_dir, exist_ok=True)
    name = entry_filename(entry)
    path = os.path.join(corpus_dir, name)
    tmp_path = os.path.join(corpus_dir, f".{name}.tmp")
    with open(tmp_path, "w", encoding="utf-8") as handle:
        json.dump(entry, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp_path, path)
    return path


def load_corpus(corpus_dir: str) -> List[Tuple[str, Dict[str, object]]]:
    """All (path, entry) pairs in a corpus directory, sorted by name."""
    entries: List[Tuple[str, Dict[str, object]]] = []
    if not os.path.isdir(corpus_dir):
        return entries
    for name in sorted(os.listdir(corpus_dir)):
        if not name.endswith(".json"):
            continue
        path = os.path.join(corpus_dir, name)
        with open(path, "r", encoding="utf-8") as handle:
            entry = json.load(handle)
        if isinstance(entry, dict) and "scenario" in entry:
            entries.append((path, entry))
    return entries


def replay_entry(entry: Dict[str, object],
                 event_budget: Optional[int] = CHAOS_EVENT_BUDGET,
                 determinism: bool = True,
                 name: str = "<entry>") -> OracleVerdict:
    """Re-run one corpus entry through the oracle stack it was found by.

    Entries carrying a ``relation`` replay through the differential
    oracle; all others through the crash/determinism stack.  Raises
    :class:`CorpusFormatError` for entries this code cannot honour.
    """
    validate_entry(entry, name=name)
    scenario = Scenario.from_dict(entry["scenario"])  # type: ignore[arg-type]
    relation = entry.get("relation")
    if relation is not None:
        from .differential import check_differential
        return check_differential(scenario, str(relation),
                                  event_budget=event_budget)
    return check_scenario(scenario, event_budget=event_budget,
                          determinism=determinism)
