"""Packets: the unit of transfer on every link in the simulation.

A packet carries an opaque ``payload`` (for us, always a TCP segment), a
wire ``size`` in bytes, and bookkeeping fields the measurement layer uses
to classify retransmissions.  The paper's tcpdump traces are our
``LinkTap`` records over these packets.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

__all__ = ["Packet"]

_packet_ids = itertools.count(1)


class Packet:
    """A single IP-layer datagram.

    Attributes
    ----------
    src, dst:
        Host addresses (plain strings, e.g. ``"client"``, ``"proxy"``).
    size:
        Total on-the-wire size in bytes, headers included.
    payload:
        The transported object (a :class:`~repro.tcp.segment.Segment`).
    lost:
        Set by the link when the drop process claims this packet.  The
        sender keeps references to its transmitted packets, so this flag
        is the ground truth used to classify a retransmission as
        *spurious* (no copy of the data was actually lost) versus
        *genuine*.
    """

    __slots__ = ("packet_id", "src", "dst", "size", "payload",
                 "created_at", "delivered_at", "lost")

    def __init__(self, src: str, dst: str, size: int, payload: Any = None,
                 created_at: float = 0.0):
        if size <= 0:
            raise ValueError(f"packet size must be positive, got {size}")
        self.packet_id: int = next(_packet_ids)
        self.src = src
        self.dst = dst
        self.size = size
        self.payload = payload
        self.created_at = created_at
        self.delivered_at: Optional[float] = None
        self.lost = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "lost" if self.lost else (
            "delivered" if self.delivered_at is not None else "in-flight")
        return (f"<Packet #{self.packet_id} {self.src}->{self.dst} "
                f"{self.size}B {status}>")
