"""Unidirectional links with serialization, propagation, loss and drop-tail queues.

A :class:`Link` models one direction of a path: packets are serialized at
``bandwidth_bps``, experience ``latency`` (+ optional jitter) of
propagation, may be dropped by a Bernoulli loss process or by drop-tail
queue overflow, and are finally handed to the destination host.

:class:`LinkTap` is our tcpdump: it observes every enqueue, drop and
delivery on a link and is the raw input to the packet-trace analysis in
:mod:`repro.metrics`.
"""

from __future__ import annotations

from typing import Callable, List, Optional, TYPE_CHECKING

from ..sim import Simulator
from .packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from .node import Host

__all__ = ["Link", "LinkTap", "DuplexLink"]

# Tap event kinds
ENQUEUE = "enqueue"
DROP_QUEUE = "drop-queue"
DROP_LOSS = "drop-loss"
DELIVER = "deliver"


class LinkTap:
    """Observer interface for link events (our tcpdump).

    Subclass or pass callbacks; every event carries the kind, the packet,
    and the simulated time.
    """

    def __init__(self, callback: Callable[[str, Packet, float], None]):
        self._callback = callback

    def notify(self, kind: str, packet: Packet, time: float) -> None:
        self._callback(kind, packet, time)


class Link:
    """One direction of a network path.

    Parameters
    ----------
    bandwidth_bps:
        Serialization rate in bits/second, or ``None`` for an infinitely
        fast link (useful in unit tests).
    latency:
        One-way propagation delay in seconds.
    jitter:
        Optional callable ``jitter(rng) -> float`` returning an *additive*
        per-packet delay in seconds.  Delivery order is still FIFO: a
        packet never overtakes one serialized before it.
    loss_rate:
        Independent per-packet drop probability, applied at serialization.
    queue_limit_bytes:
        Drop-tail buffer size.  ``None`` means unbounded (again, tests).
    """

    def __init__(self, sim: Simulator, name: str, dst: "Host",
                 bandwidth_bps: Optional[float] = None,
                 latency: float = 0.0,
                 jitter: Optional[Callable] = None,
                 loss_rate: float = 0.0,
                 queue_limit_bytes: Optional[int] = 256 * 1024):
        if latency < 0:
            raise ValueError("latency must be non-negative")
        if not (0.0 <= loss_rate < 1.0):
            raise ValueError("loss_rate must be in [0, 1)")
        self.sim = sim
        self.name = name
        self.dst = dst
        self.bandwidth_bps = bandwidth_bps
        self.latency = latency
        self.jitter = jitter
        self.loss_rate = loss_rate
        self.queue_limit_bytes = queue_limit_bytes

        self._busy_until = 0.0
        self._queued_bytes = 0
        self._last_delivery = 0.0
        self._taps: List[LinkTap] = []
        self._rng = sim.rng(f"link/{name}")

        # counters for quick sanity checks
        self.packets_sent = 0
        self.packets_dropped = 0
        self.bytes_sent = 0

    # ------------------------------------------------------------------
    def add_tap(self, tap: LinkTap) -> None:
        """Attach a trace observer to this link."""
        self._taps.append(tap)

    def _notify(self, kind: str, packet: Packet) -> None:
        for tap in self._taps:
            tap.notify(kind, packet, self.sim.now)

    # ------------------------------------------------------------------
    def transmit(self, packet: Packet) -> None:
        """Accept a packet for transmission (or drop it at the queue)."""
        now = self.sim.now
        if self.queue_limit_bytes is not None:
            backlog = self._queued_bytes
            if backlog + packet.size > self.queue_limit_bytes:
                packet.lost = True
                self.packets_dropped += 1
                self._notify(DROP_QUEUE, packet)
                return
        self._notify(ENQUEUE, packet)
        self._queued_bytes += packet.size

        start = max(now, self._busy_until, self._gate_time(packet))
        rate = self._rate(packet)
        if rate is None:
            tx_time = 0.0
        else:
            tx_time = packet.size * 8.0 / rate
        end = start + tx_time
        self._busy_until = end

        # Loss is decided now so the sender-side spurious-retransmission
        # classifier can inspect packet.lost immediately.
        if self.loss_rate > 0 and self._rng.random() < self.loss_rate:
            packet.lost = True
            self.packets_dropped += 1
            self.sim.schedule_at(end, self._drop_after_tx, packet)
            return

        extra = self.jitter(self._rng) if self.jitter is not None else 0.0
        arrival = end + self._latency_for(packet) + max(0.0, extra)
        # FIFO: never let jitter reorder packets on the same link.
        arrival = max(arrival, self._last_delivery)
        self._last_delivery = arrival
        self.sim.schedule_at(end, self._finish_serialization, packet)
        self.sim.schedule_at(arrival, self._deliver, packet)

    # ------------------------------------------------------------------
    # hooks for subclasses (the cellular radio link overrides these)
    # ------------------------------------------------------------------
    def _gate_time(self, packet: Packet) -> float:
        """Earliest instant serialization may begin (radio promotion gate)."""
        return self.sim.now

    def _rate(self, packet: Packet) -> Optional[float]:
        """Serialization rate for this packet (state-dependent on a radio)."""
        return self.bandwidth_bps

    def _latency_for(self, packet: Packet) -> float:
        """One-way propagation latency for this packet."""
        return self.latency

    def _drop_after_tx(self, packet: Packet) -> None:
        self._queued_bytes -= packet.size
        self._notify(DROP_LOSS, packet)

    def _finish_serialization(self, packet: Packet) -> None:
        self._queued_bytes -= packet.size
        self.packets_sent += 1
        self.bytes_sent += packet.size

    def _deliver(self, packet: Packet) -> None:
        packet.delivered_at = self.sim.now
        self._notify(DELIVER, packet)
        self.dst.receive(packet)

    # ------------------------------------------------------------------
    @property
    def backlog_bytes(self) -> int:
        """Bytes currently queued or in serialization."""
        return self._queued_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Link {self.name} -> {self.dst.address}>"


class DuplexLink:
    """Convenience wrapper wiring two hosts with symmetric-or-not links."""

    def __init__(self, sim: Simulator, a: "Host", b: "Host",
                 bandwidth_down_bps: Optional[float] = None,
                 bandwidth_up_bps: Optional[float] = None,
                 latency: float = 0.0,
                 jitter: Optional[Callable] = None,
                 loss_rate: float = 0.0,
                 queue_limit_bytes: Optional[int] = 256 * 1024):
        # "down" is a->b is arbitrary; callers name the hosts accordingly.
        self.forward = Link(sim, f"{a.address}->{b.address}", b,
                            bandwidth_down_bps, latency, jitter, loss_rate,
                            queue_limit_bytes)
        self.backward = Link(sim, f"{b.address}->{a.address}", a,
                             bandwidth_up_bps, latency, jitter, loss_rate,
                             queue_limit_bytes)
        a.add_route(b.address, self.forward)
        b.add_route(a.address, self.backward)
