"""Unidirectional links with serialization, propagation, loss and drop-tail queues.

A :class:`Link` models one direction of a path: packets are serialized at
``bandwidth_bps``, experience ``latency`` (+ optional jitter) of
propagation, may be dropped by a Bernoulli loss process or by drop-tail
queue overflow, and are finally handed to the destination host.

:class:`LinkTap` is our tcpdump: it observes every enqueue, drop and
delivery on a link and is the raw input to the packet-trace analysis in
:mod:`repro.metrics`.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, TYPE_CHECKING

from ..sim import Simulator
from .packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from .node import Host

__all__ = ["Link", "LinkTap", "DuplexLink",
           "LossModel", "BernoulliLoss", "GilbertElliottLoss"]

# Tap event kinds
ENQUEUE = "enqueue"
DROP_QUEUE = "drop-queue"
DROP_LOSS = "drop-loss"
DROP_OUTAGE = "drop-outage"
DELIVER = "deliver"


class LossModel:
    """Pluggable per-packet loss process.

    ``should_drop`` is called once per packet at serialization time with
    the link's private RNG stream; implementations must draw from *that*
    RNG only, so loss decisions stay deterministic per (seed, link name).
    """

    def should_drop(self, rng) -> bool:  # pragma: no cover - interface
        raise NotImplementedError


class BernoulliLoss(LossModel):
    """Independent per-packet loss with fixed probability ``rate``.

    Draw-for-draw identical to the historical inline check, so wrapping a
    plain ``loss_rate`` in this model does not perturb existing seeds.
    """

    def __init__(self, rate: float):
        if not (0.0 <= rate < 1.0):
            raise ValueError("loss rate must be in [0, 1)")
        self.rate = rate

    def should_drop(self, rng) -> bool:
        return rng.random() < self.rate

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BernoulliLoss rate={self.rate}>"


class GilbertElliottLoss(LossModel):
    """Two-state (good/bad) burst-loss model.

    The channel flips between a *good* state (loss ``loss_good``, usually
    0) and a *bad* state (loss ``loss_bad``, usually 1) with per-packet
    transition probabilities ``p_good_to_bad`` / ``p_bad_to_good``.  This
    reproduces the clustered losses of cellular fades that independent
    Bernoulli drops cannot: the same average loss rate hurts far more
    when concentrated, because whole windows disappear at once.
    """

    def __init__(self, p_good_to_bad: float, p_bad_to_good: float,
                 loss_good: float = 0.0, loss_bad: float = 1.0):
        for name, p in (("p_good_to_bad", p_good_to_bad),
                        ("p_bad_to_good", p_bad_to_good)):
            if not (0.0 <= p <= 1.0):
                raise ValueError(f"{name} must be in [0, 1]")
        if not (0.0 <= loss_good <= 1.0 and 0.0 < loss_bad <= 1.0):
            raise ValueError("loss probabilities out of range")
        self.p_good_to_bad = p_good_to_bad
        self.p_bad_to_good = p_bad_to_good
        self.loss_good = loss_good
        self.loss_bad = loss_bad
        self.bad = False

    @classmethod
    def from_average(cls, average_rate: float, mean_burst: float = 8.0,
                     loss_bad: float = 1.0) -> "GilbertElliottLoss":
        """Build a model whose stationary loss rate is ``average_rate``.

        ``mean_burst`` is the expected number of packets spent in the bad
        state per visit (geometric with parameter ``1/mean_burst``).
        """
        if not (0.0 < average_rate < loss_bad):
            raise ValueError("average_rate must be in (0, loss_bad)")
        if mean_burst < 1.0:
            raise ValueError("mean_burst must be >= 1")
        pi_bad = average_rate / loss_bad
        p_bad_to_good = 1.0 / mean_burst
        p_good_to_bad = pi_bad * p_bad_to_good / (1.0 - pi_bad)
        return cls(p_good_to_bad, p_bad_to_good, 0.0, loss_bad)

    def should_drop(self, rng) -> bool:
        loss = self.loss_bad if self.bad else self.loss_good
        drop = loss > 0.0 and rng.random() < loss
        if self.bad:
            if rng.random() < self.p_bad_to_good:
                self.bad = False
        else:
            if rng.random() < self.p_good_to_bad:
                self.bad = True
        return drop

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<GilbertElliottLoss p_gb={self.p_good_to_bad:.4f} "
                f"p_bg={self.p_bad_to_good:.4f} bad={self.bad}>")


class LinkTap:
    """Observer interface for link events (our tcpdump).

    Subclass or pass callbacks; every event carries the kind, the packet,
    and the simulated time.
    """

    def __init__(self, callback: Callable[[str, Packet, float], None]):
        self._callback = callback

    def notify(self, kind: str, packet: Packet, time: float) -> None:
        self._callback(kind, packet, time)


class Link:
    """One direction of a network path.

    Parameters
    ----------
    bandwidth_bps:
        Serialization rate in bits/second, or ``None`` for an infinitely
        fast link (useful in unit tests).
    latency:
        One-way propagation delay in seconds.
    jitter:
        Optional callable ``jitter(rng) -> float`` returning an *additive*
        per-packet delay in seconds.  Delivery order is still FIFO: a
        packet never overtakes one serialized before it.
    loss_rate:
        Independent per-packet drop probability, applied at serialization.
        Shorthand for ``loss_model=BernoulliLoss(loss_rate)``.
    loss_model:
        Explicit :class:`LossModel` instance (e.g. Gilbert–Elliott burst
        loss).  Takes precedence over ``loss_rate``.
    queue_limit_bytes:
        Drop-tail buffer size.  ``None`` means unbounded (again, tests).
    """

    def __init__(self, sim: Simulator, name: str, dst: "Host",
                 bandwidth_bps: Optional[float] = None,
                 latency: float = 0.0,
                 jitter: Optional[Callable] = None,
                 loss_rate: float = 0.0,
                 queue_limit_bytes: Optional[int] = 256 * 1024,
                 loss_model: Optional[LossModel] = None):
        if latency < 0:
            raise ValueError("latency must be non-negative")
        if not (0.0 <= loss_rate < 1.0):
            raise ValueError("loss_rate must be in [0, 1)")
        self.sim = sim
        self.name = name
        self.dst = dst
        self.bandwidth_bps = bandwidth_bps
        self.latency = latency
        self.jitter = jitter
        self.loss_rate = loss_rate
        if loss_model is None and loss_rate > 0:
            loss_model = BernoulliLoss(loss_rate)
        self.loss_model = loss_model
        self.queue_limit_bytes = queue_limit_bytes

        self._busy_until = 0.0
        self._queued_bytes = 0
        self._last_delivery = 0.0
        self._taps: List[LinkTap] = []
        self._rng = sim.rng(f"link/{name}")

        # fault-injection state: while an outage is active the link either
        # parks new packets until it ends ("queue") or drops them ("drop").
        self._outage_until = 0.0
        self._outage_policy = "queue"

        # link-layer ARQ (RLC retransmission): radio losses at _arq_rate
        # are recovered below TCP, surfacing as bounded extra delay.
        self._arq_rate = 0.0
        self._arq_max_delay = 0.0

        # cell-reselection delay spike: the link freezes until _spike_until;
        # packets (queued or in flight) are delayed, never dropped.
        self._spike_until = 0.0

        # counters for quick sanity checks
        self.packets_sent = 0
        self.packets_dropped = 0
        self.bytes_sent = 0
        self.outages = 0
        self.outage_drops = 0
        self.arq_recoveries = 0
        self.delay_spikes = 0

        # conservation accounting: every packet handed to transmit() is
        # *accepted*, and must end up exactly once in delivered, lost, or
        # still in flight.  The sanity layer checks the books on every
        # delivery/drop; the counters themselves are always maintained.
        self.packets_accepted = 0
        self.packets_delivered = 0
        self.packets_lost = 0
        self.bytes_accepted = 0
        self.bytes_delivered = 0
        self.bytes_lost = 0
        self.packets_in_flight = 0
        self.bytes_in_flight = 0
        self.sanitizer: Optional[Any] = None  # repro.sanity.Sanitizer when checks are on

    # ------------------------------------------------------------------
    def add_tap(self, tap: LinkTap) -> None:
        """Attach a trace observer to this link."""
        self._taps.append(tap)

    def _notify(self, kind: str, packet: Packet) -> None:
        # Hot paths guard calls with `if self._taps:` so an untapped link
        # (every headline run) pays nothing here.
        now = self.sim.now
        for tap in self._taps:
            tap.notify(kind, packet, now)

    # ------------------------------------------------------------------
    def start_outage(self, duration: float, policy: str = "queue") -> float:
        """Black out the link for ``duration`` seconds starting now.

        ``policy="queue"`` parks newly submitted packets until the outage
        ends (serialization is gated, nothing is lost); ``policy="drop"``
        discards them outright.  Packets already serialized or in flight
        are unaffected — the fade hits the sender's queue, not photons
        already past it.  Returns the absolute end time of the outage.
        """
        if duration < 0:
            raise ValueError("outage duration must be non-negative")
        if policy not in ("queue", "drop"):
            raise ValueError(f"unknown outage policy {policy!r}")
        self._outage_until = max(self._outage_until, self.sim.now + duration)
        self._outage_policy = policy
        self.outages += 1
        return self._outage_until

    @property
    def in_outage(self) -> bool:
        return self.sim.now < self._outage_until

    # ------------------------------------------------------------------
    def enable_arq(self, rate: float, max_delay: float) -> None:
        """Turn on RLC-layer link retransmission from now on.

        With probability ``rate`` a packet's radio frame is lost and
        recovered by the link layer below TCP: the packet is *delayed* by
        up to ``max_delay`` seconds instead of dropped.  This is the 3G
        RLC acknowledged mode of arXiv:0903.4959 — TCP above sees a
        (nearly) loss-free link with heavy delay variation.  All draws
        come from the link's private RNG, so enabling ARQ never perturbs
        other seed streams.
        """
        if not (0.0 < rate < 1.0):
            raise ValueError("arq rate must be in (0, 1)")
        if max_delay <= 0:
            raise ValueError("arq max_delay must be > 0")
        self._arq_rate = rate
        self._arq_max_delay = max_delay

    def start_delay_spike(self, duration: float) -> float:
        """Freeze the link for ``duration`` seconds starting now.

        Models a cell-reselection stall (arXiv:0903.4959): serialization
        is gated and packets already in flight are held and released when
        the spike ends.  Nothing is ever dropped — the defining contrast
        with :meth:`start_outage` — so byte conservation is untouched.
        Returns the absolute end time of the spike.
        """
        if duration <= 0:
            raise ValueError("delay spike duration must be > 0")
        self._spike_until = max(self._spike_until, self.sim.now + duration)
        self.delay_spikes += 1
        return self._spike_until

    @property
    def in_delay_spike(self) -> bool:
        return self.sim.now < self._spike_until

    # ------------------------------------------------------------------
    def transmit(self, packet: Packet) -> None:
        """Accept a packet for transmission (or drop it at the queue)."""
        sim = self.sim
        now = sim.now
        size = packet.size
        self.packets_accepted += 1
        self.bytes_accepted += size
        if now < self._outage_until and self._outage_policy == "drop":
            packet.lost = True
            self.packets_dropped += 1
            self.outage_drops += 1
            self._account_loss(packet, in_flight=False)
            if self._taps:
                self._notify(DROP_OUTAGE, packet)
            self._emit_sanity(DROP_OUTAGE, packet)
            return
        queue_limit = self.queue_limit_bytes
        if queue_limit is not None and self._queued_bytes + size > queue_limit:
            packet.lost = True
            self.packets_dropped += 1
            self._account_loss(packet, in_flight=False)
            if self._taps:
                self._notify(DROP_QUEUE, packet)
            self._emit_sanity(DROP_QUEUE, packet)
            return
        if self._taps:
            self._notify(ENQUEUE, packet)
        self._queued_bytes += size
        self.packets_in_flight += 1
        self.bytes_in_flight += size

        start = max(now, self._busy_until, self._gate_time(packet),
                    self._outage_until, self._spike_until)
        rate = self._rate(packet)
        if rate is None:
            end = start
        else:
            end = start + size * 8.0 / rate
        self._busy_until = end

        # Loss is decided now so the sender-side spurious-retransmission
        # classifier can inspect packet.lost immediately.
        if self.loss_model is not None and self.loss_model.should_drop(self._rng):
            packet.lost = True
            self.packets_dropped += 1
            sim.schedule_at(end, self._drop_after_tx, packet)
            return

        # RNG draw order (jitter, then ARQ) is part of the determinism
        # contract; the no-jitter/no-ARQ fast path below draws nothing,
        # exactly like the general expression with both features off.
        if self.jitter is None and self._arq_rate == 0.0:
            arrival = end + self._latency_for(packet)
        else:
            extra = self.jitter(self._rng) if self.jitter is not None else 0.0
            if self._arq_rate > 0.0 and self._rng.random() < self._arq_rate:
                # RLC recovery: the frame was lost on the air and
                # retransmitted below TCP — bounded extra delay, never a
                # drop.
                extra += self._rng.random() * self._arq_max_delay
                self.arq_recoveries += 1
            arrival = end + self._latency_for(packet) + max(0.0, extra)
        # FIFO: never let jitter reorder packets on the same link.
        if arrival < self._last_delivery:
            arrival = self._last_delivery
        else:
            self._last_delivery = arrival
        sim.schedule_at(end, self._finish_serialization, packet)
        sim.schedule_at(arrival, self._deliver, packet)

    # ------------------------------------------------------------------
    # hooks for subclasses (the cellular radio link overrides these)
    # ------------------------------------------------------------------
    def _gate_time(self, packet: Packet) -> float:
        """Earliest instant serialization may begin (radio promotion gate)."""
        return self.sim.now

    def _rate(self, packet: Packet) -> Optional[float]:
        """Serialization rate for this packet (state-dependent on a radio)."""
        return self.bandwidth_bps

    def _latency_for(self, packet: Packet) -> float:
        """One-way propagation latency for this packet."""
        return self.latency

    def _drop_after_tx(self, packet: Packet) -> None:
        self._queued_bytes -= packet.size
        self._account_loss(packet, in_flight=True)
        self._notify(DROP_LOSS, packet)
        self._emit_sanity(DROP_LOSS, packet)

    def _finish_serialization(self, packet: Packet) -> None:
        self._queued_bytes -= packet.size
        self.packets_sent += 1
        self.bytes_sent += packet.size

    def _deliver(self, packet: Packet) -> None:
        sim = self.sim
        now = sim.now
        if now < self._spike_until:
            # Cell-reselection stall caught this packet in flight: hold it
            # at the radio and release when the spike ends.  Reschedules
            # happen in original arrival order at a common release time,
            # so (time, seq) heap ordering preserves FIFO delivery.
            sim.schedule_at(self._spike_until, self._deliver, packet)
            return
        size = packet.size
        packet.delivered_at = now
        self.packets_delivered += 1
        self.bytes_delivered += size
        self.packets_in_flight -= 1
        self.bytes_in_flight -= size
        if self._taps:
            self._notify(DELIVER, packet)
        if self.sanitizer is not None:
            self._emit_sanity(DELIVER, packet)
        self.dst.receive(packet)

    # ------------------------------------------------------------------
    def _account_loss(self, packet: Packet, in_flight: bool) -> None:
        self.packets_lost += 1
        self.bytes_lost += packet.size
        if in_flight:
            self.packets_in_flight -= 1
            self.bytes_in_flight -= packet.size

    def _emit_sanity(self, kind: str, packet: Packet) -> None:
        if self.sanitizer is not None:
            self.sanitizer.emit("link.event", self,
                                detail=f"{self.name} {kind} {packet.size}B",
                                kind=kind, packet=packet)

    # ------------------------------------------------------------------
    @property
    def backlog_bytes(self) -> int:
        """Bytes currently queued or in serialization."""
        return self._queued_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Link {self.name} -> {self.dst.address}>"


class DuplexLink:
    """Convenience wrapper wiring two hosts with symmetric-or-not links."""

    def __init__(self, sim: Simulator, a: "Host", b: "Host",
                 bandwidth_down_bps: Optional[float] = None,
                 bandwidth_up_bps: Optional[float] = None,
                 latency: float = 0.0,
                 jitter: Optional[Callable] = None,
                 loss_rate: float = 0.0,
                 queue_limit_bytes: Optional[int] = 256 * 1024):
        # "down" is a->b is arbitrary; callers name the hosts accordingly.
        self.forward = Link(sim, f"{a.address}->{b.address}", b,
                            bandwidth_down_bps, latency, jitter, loss_rate,
                            queue_limit_bytes)
        self.backward = Link(sim, f"{b.address}->{a.address}", a,
                             bandwidth_up_bps, latency, jitter, loss_rate,
                             queue_limit_bytes)
        a.add_route(b.address, self.forward)
        b.add_route(a.address, self.backward)
