"""Generic packet-network substrate: packets, links, hosts, taps."""

from .packet import Packet
from .link import (BernoulliLoss, DuplexLink, GilbertElliottLoss, Link,
                   LinkTap, LossModel)
from .node import Host, RoutingError

__all__ = ["Packet", "Link", "DuplexLink", "LinkTap", "Host", "RoutingError",
           "LossModel", "BernoulliLoss", "GilbertElliottLoss"]
