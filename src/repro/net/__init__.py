"""Generic packet-network substrate: packets, links, hosts, taps."""

from .packet import Packet
from .link import DuplexLink, Link, LinkTap
from .node import Host, RoutingError

__all__ = ["Packet", "Link", "DuplexLink", "LinkTap", "Host", "RoutingError"]
