"""Hosts: addressable endpoints with static routes and protocol demux.

Our topology is tiny (client, proxy, a handful of origins) so routing is
a direct ``dst address -> outgoing link`` table.  Each host owns exactly
one TCP stack, installed by :class:`repro.tcp.stack.TcpStack` itself.
"""

from __future__ import annotations

from typing import Dict, Optional, TYPE_CHECKING

from ..sim import Simulator
from .packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from .link import Link
    from ..tcp.stack import TcpStack

__all__ = ["Host", "RoutingError"]


class RoutingError(RuntimeError):
    """Raised when a host has no route for a packet's destination."""


class Host:
    """A network endpoint identified by a string address."""

    def __init__(self, sim: Simulator, address: str):
        self.sim = sim
        self.address = address
        self._routes: Dict[str, "Link"] = {}
        self._default_route: Optional["Link"] = None
        self.tcp: Optional["TcpStack"] = None

    # ------------------------------------------------------------------
    def add_route(self, dst: str, link: "Link") -> None:
        """Install a static route: packets for ``dst`` leave via ``link``."""
        self._routes[dst] = link

    def set_default_route(self, link: "Link") -> None:
        """Install a catch-all route (used by the client: everything via radio)."""
        self._default_route = link

    def route_for(self, dst: str) -> "Link":
        link = self._routes.get(dst)
        if link is None:
            link = self._default_route
        if link is None:
            raise RoutingError(f"{self.address}: no route to {dst}")
        return link

    # ------------------------------------------------------------------
    def send(self, packet: Packet) -> None:
        """Transmit a locally generated packet toward its destination."""
        self.route_for(packet.dst).transmit(packet)

    def receive(self, packet: Packet) -> None:
        """Handle a packet arriving at this host.

        Packets addressed to us are handed to the TCP stack; anything
        else is forwarded (lets tests build multi-hop chains).
        """
        if packet.dst == self.address:
            if self.tcp is None:
                raise RoutingError(
                    f"{self.address}: packet arrived but no TCP stack installed")
            self.tcp.receive(packet)
        else:
            self.route_for(packet.dst).transmit(packet)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Host {self.address}>"
