"""`repro lint` / `python -m repro.lint` command-line front end.

Exit codes: 0 clean, 1 findings (or stale baseline entries), 2 usage or
I/O errors.  ``--format json`` emits a machine-readable document so
campaigns and CI can archive lint state next to trial journals.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence

from .baseline import DEFAULT_BASELINE_NAME, Baseline, BaselineError
from .engine import LintReport, lint_paths
from .rules import all_rules, rules_by_code

__all__ = ["add_lint_arguments", "run_lint", "main"]

DEFAULT_PATHS = ["src", "tests", "benchmarks"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories to lint "
                             f"(default: {' '.join(DEFAULT_PATHS)})")
    parser.add_argument("--format", choices=["text", "json"], default="text",
                        help="output format (default text)")
    parser.add_argument("--baseline", metavar="PATH", default=None,
                        help="baseline file of grandfathered findings "
                             f"(default: {DEFAULT_BASELINE_NAME} if present)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write current findings to the baseline file "
                             "and exit 0 (use sparingly; prefer fixing)")
    parser.add_argument("--select", metavar="CODES", default=None,
                        help="comma-separated rule codes to run "
                             "(default: all)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")


def _resolve_rules(select: Optional[str]):
    if not select:
        return None
    catalogue = rules_by_code()
    chosen = []
    for code in select.split(","):
        code = code.strip().upper()
        if not code:
            continue
        if code not in catalogue:
            raise SystemExit(
                f"unknown rule code {code!r}; known: "
                f"{', '.join(sorted(catalogue))}")
        chosen.append(catalogue[code])
    return chosen


def _load_baseline(path: Optional[str]) -> Baseline:
    if path is None:
        if os.path.exists(DEFAULT_BASELINE_NAME):
            path = DEFAULT_BASELINE_NAME
        else:
            return Baseline.empty()
    return Baseline.load(path)


def _print_rules(out) -> None:
    print("repro lint rule catalogue:", file=out)
    for rule in all_rules():
        scope = "sim code only" if rule.scope == "sim" else "all files"
        print(f"  {rule.code}  [{scope}] {rule.summary}", file=out)
        print(f"          e.g. {rule.example}", file=out)


def _render_text(report: LintReport, out) -> None:
    for finding in report.findings:
        print(finding.render(), file=out)
    for path, code, line_text in report.stale_baseline:
        print(f"{path}: stale baseline entry {code} ({line_text!r}) — "
              f"the finding is gone; delete the entry", file=out)
    summary = (f"{len(report.findings)} finding(s) in "
               f"{report.files_checked} file(s)")
    if report.baselined:
        summary += f", {report.baselined} baselined"
    if report.suppressed:
        summary += f", {report.suppressed} inline suppression(s)"
    print(summary, file=out)


def _render_json(report: LintReport, out) -> None:
    counts: dict = {}
    for finding in report.findings:
        counts[finding.code] = counts.get(finding.code, 0) + 1
    payload = {
        "version": 1,
        "files_checked": report.files_checked,
        "findings": [f.to_json() for f in report.findings],
        "counts": counts,
        "baselined": report.baselined,
        "suppressed": report.suppressed,
        "stale_baseline": [list(key) for key in report.stale_baseline],
        "clean": report.clean and not report.stale_baseline,
    }
    json.dump(payload, out, indent=2)
    out.write("\n")


def run_lint(args: argparse.Namespace,
             out=None, err=None) -> int:
    out = out if out is not None else sys.stdout
    err = err if err is not None else sys.stderr
    if args.list_rules:
        _print_rules(out)
        return 0
    paths = args.paths or DEFAULT_PATHS
    rules = _resolve_rules(args.select)

    if args.write_baseline:
        baseline_path = args.baseline or DEFAULT_BASELINE_NAME
        report = lint_paths(paths, rules=rules, baseline=Baseline.empty())
        if report.errors:
            for error in report.errors:
                print(error, file=err)
            return 2
        Baseline.from_findings(report.findings).save(baseline_path)
        print(f"wrote {len(report.findings)} finding(s) to {baseline_path}",
              file=out)
        return 0

    try:
        baseline = _load_baseline(args.baseline)
    except (BaselineError, FileNotFoundError) as exc:
        print(str(exc), file=err)
        return 2
    report = lint_paths(paths, rules=rules, baseline=baseline)
    if report.errors:
        for error in report.errors:
            print(error, file=err)
        return 2
    if args.format == "json":
        _render_json(report, out)
    else:
        _render_text(report, out)
    return 0 if (report.clean and not report.stale_baseline) else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="AST-based determinism & units linter for the simulator")
    add_lint_arguments(parser)
    args = parser.parse_args(argv)
    return run_lint(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
