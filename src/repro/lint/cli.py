"""`repro lint` / `python -m repro.lint` command-line front end.

Exit codes: 0 clean, 1 findings (or stale baseline entries), 2 usage or
I/O errors.  ``--format json`` emits a machine-readable document so
campaigns and CI can archive lint state next to trial journals.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import IO, List, Optional, Sequence, Tuple

from .baseline import DEFAULT_BASELINE_NAME, Baseline, BaselineError
from .engine import LintReport, lint_paths
from .graph.cache import DEFAULT_CACHE_DIR
from .graph.driver import all_graph_rules, graph_rules_by_code
from .rules import Rule, all_rules, rules_by_code

__all__ = ["add_lint_arguments", "run_lint", "main"]

DEFAULT_PATHS = ["src", "tests", "benchmarks"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories to lint "
                             f"(default: {' '.join(DEFAULT_PATHS)})")
    parser.add_argument("--format", choices=["text", "json"], default="text",
                        help="output format (default text)")
    parser.add_argument("--baseline", metavar="PATH", default=None,
                        help="baseline file of grandfathered findings "
                             f"(default: {DEFAULT_BASELINE_NAME} if present)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write current findings to the baseline file "
                             "and exit 0 (use sparingly; prefer fixing)")
    parser.add_argument("--select", metavar="CODES", default=None,
                        help="comma-separated rule codes to run "
                             "(default: all)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--deep", action="store_true",
                        help="also run the whole-program analyses: "
                             "call-graph entropy taint, sim-purity "
                             "reachability, worker-layer race detection, "
                             "interprocedural unit flow")
    parser.add_argument("--jobs", metavar="N", type=int, default=1,
                        help="evaluate per-file rules in N processes "
                             "(findings are byte-identical to -j1)")
    parser.add_argument("--cache-dir", metavar="DIR",
                        default=DEFAULT_CACHE_DIR,
                        help="on-disk IR cache for --deep "
                             f"(default: {DEFAULT_CACHE_DIR})")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the --deep IR cache")


def _resolve_rules(
    select: Optional[str],
) -> Tuple[Optional[List["Rule"]], Optional[List[str]]]:
    """Split ``--select`` into (per-file rule objects, deep rule codes).

    Either element is None when the selection doesn't constrain that
    layer (no --select at all, or no codes from that layer mentioned —
    a pure per-file selection still filters deep findings and vice
    versa, so "no codes mentioned" maps to an empty filter, not None).
    """
    if not select:
        return None, None
    catalogue = rules_by_code()
    graph_catalogue = graph_rules_by_code()
    chosen = []
    deep_codes = []
    for code in select.split(","):
        code = code.strip().upper()
        if not code:
            continue
        if code in catalogue:
            chosen.append(catalogue[code])
        elif code in graph_catalogue:
            deep_codes.append(code)
        else:
            known = sorted(catalogue) + sorted(graph_catalogue)
            raise SystemExit(
                f"unknown rule code {code!r}; known: {', '.join(known)}")
    return chosen, deep_codes


def _load_baseline(path: Optional[str]) -> Baseline:
    if path is None:
        if os.path.exists(DEFAULT_BASELINE_NAME):
            path = DEFAULT_BASELINE_NAME
        else:
            return Baseline.empty()
    return Baseline.load(path)


def _print_rules(out: IO[str]) -> None:
    print("repro lint rule catalogue:", file=out)
    for rule in all_rules():
        scope = "sim code only" if rule.scope == "sim" else "all files"
        print(f"  {rule.code}  [{scope}] {rule.summary}", file=out)
        print(f"          e.g. {rule.example}", file=out)
    print("whole-program rules (require --deep):", file=out)
    for graph_rule in all_graph_rules():
        print(f"  {graph_rule.code}  [--deep] {graph_rule.summary}",
              file=out)
        for index, line in enumerate(graph_rule.example.splitlines()):
            prefix = "          e.g. " if index == 0 else "               "
            print(f"{prefix}{line}", file=out)


def _render_text(report: LintReport, out: IO[str]) -> None:
    for finding in report.findings:
        print(finding.render(), file=out)
    for path, code, line_text in report.stale_baseline:
        print(f"{path}: stale baseline entry {code} ({line_text!r}) — "
              f"the finding is gone; delete the entry", file=out)
    summary = (f"{len(report.findings)} finding(s) in "
               f"{report.files_checked} file(s)")
    if report.baselined:
        summary += f", {report.baselined} baselined"
    if report.suppressed:
        summary += f", {report.suppressed} inline suppression(s)"
    print(summary, file=out)
    if report.deep:
        print(f"deep: {report.deep_modules} module(s) analyzed in "
              f"{report.deep_seconds:.2f}s (IR cache: "
              f"{report.deep_cache_hits} hit(s), "
              f"{report.deep_cache_misses} miss(es))", file=out)


def _render_json(report: LintReport, out: IO[str]) -> None:
    counts: dict = {}
    for finding in report.findings:
        counts[finding.code] = counts.get(finding.code, 0) + 1
    payload = {
        "version": 1,
        "files_checked": report.files_checked,
        "findings": [f.to_json() for f in report.findings],
        "counts": counts,
        "baselined": report.baselined,
        "suppressed": report.suppressed,
        "stale_baseline": [list(key) for key in report.stale_baseline],
        "clean": report.clean and not report.stale_baseline,
    }
    if report.deep:
        payload["deep"] = {
            "modules": report.deep_modules,
            "cache_hits": report.deep_cache_hits,
            "cache_misses": report.deep_cache_misses,
            "seconds": round(report.deep_seconds, 4),
        }
    json.dump(payload, out, indent=2)
    out.write("\n")


def run_lint(args: argparse.Namespace,
             out: Optional[IO[str]] = None,
             err: Optional[IO[str]] = None) -> int:
    out = out if out is not None else sys.stdout
    err = err if err is not None else sys.stderr
    if args.list_rules:
        _print_rules(out)
        return 0
    if args.jobs < 1:
        print(f"--jobs must be >= 1, got {args.jobs}", file=err)
        return 2
    paths = args.paths or DEFAULT_PATHS
    rules, deep_codes = _resolve_rules(args.select)
    deep = bool(args.deep)
    cache_dir = None if args.no_cache else args.cache_dir

    if args.write_baseline:
        baseline_path = args.baseline or DEFAULT_BASELINE_NAME
        report = lint_paths(paths, rules=rules, baseline=Baseline.empty(),
                            deep=deep, jobs=args.jobs, cache_dir=cache_dir,
                            deep_codes=deep_codes)
        if report.errors:
            for error in report.errors:
                print(error, file=err)
            return 2
        Baseline.from_findings(report.findings).save(baseline_path)
        print(f"wrote {len(report.findings)} finding(s) to {baseline_path}",
              file=out)
        return 0

    try:
        baseline = _load_baseline(args.baseline)
    except (BaselineError, FileNotFoundError) as exc:
        print(str(exc), file=err)
        return 2
    report = lint_paths(paths, rules=rules, baseline=baseline,
                        deep=deep, jobs=args.jobs, cache_dir=cache_dir,
                        deep_codes=deep_codes)
    if report.errors:
        for error in report.errors:
            print(error, file=err)
        return 2
    if args.format == "json":
        _render_json(report, out)
    else:
        _render_text(report, out)
    return 0 if (report.clean and not report.stale_baseline) else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="AST-based determinism & units linter for the simulator")
    add_lint_arguments(parser)
    args = parser.parse_args(argv)
    return run_lint(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
