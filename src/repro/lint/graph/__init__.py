"""Whole-program analysis layer behind ``repro lint --deep``.

The per-file rules in :mod:`repro.lint.rules` are syntactic: they see one
module at a time and flag entropy or unit bugs *at the call site*.  This
package makes the same discipline a *flow* property:

* :mod:`.ir` extracts a JSON-serializable intermediate representation of
  each module (functions, call sites, taint atoms, unit signatures) so
  analyses never touch an AST twice and summaries can be cached on disk.
* :mod:`.cache` keys those IR documents by content hash: untouched files
  are never re-parsed across runs.
* :mod:`.builder` assembles the program: module import resolution
  (including relative imports and ``__init__`` re-exports), a class
  hierarchy, receiver-type inference, and conservative dynamic dispatch
  through the registry/factory idiom (``make_congestion_control`` and
  friends) — producing a call graph.
* :mod:`.taint` (DET1xx), :mod:`.purity` (SIM1xx), :mod:`.races`
  (PAR0xx) and :mod:`.unitflow` (UNIT1xx) are the interprocedural rules;
  each reports findings carrying the full call chain from source to sink.

Everything re-uses the Finding / suppression / baseline machinery of the
per-file linter, so ``--deep`` findings baseline and suppress exactly
like syntactic ones.
"""

from __future__ import annotations

from .builder import Program, build_program
from .cache import GraphCache
from .driver import (GraphReport, all_graph_rules, analyze_program,
                     analyze_sources, graph_rules_by_code)
from .ir import IR_VERSION, ModuleIR, extract_module

__all__ = [
    "GraphCache", "GraphReport", "IR_VERSION", "ModuleIR", "Program",
    "all_graph_rules", "analyze_program", "analyze_sources",
    "build_program", "extract_module", "graph_rules_by_code",
]
