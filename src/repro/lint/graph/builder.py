"""Assemble per-module IR documents into a whole-program call graph.

Resolution is deliberately conservative-but-useful rather than sound-
and-complete: an edge is added only when the receiver's type can be
traced (annotation, local constructor call, ``self.x = Ctor(...)``
attribute type, or a registry-factory return), and virtual calls fan out
to every subclass override, so the analyses over-approximate within the
class hierarchy but never invent targets for truly opaque receivers.

The pieces:

* a module index (dotted name -> IR) plus ``__init__`` re-export chasing,
  so ``from repro.tcp.congestion import make_congestion_control`` binds
  through the package to the defining module;
* a class hierarchy (bases resolved through imports; subclass map) for
  virtual-dispatch fan-out;
* receiver typing: parameter annotations, ``x = Ctor(...)`` locals,
  ``self.attr`` types recorded at extraction time, and constructor-
  parameter threading (``self.sim = sim`` + ``sim: Simulator``);
* registry factories: a function whose IR says ``return cls(...)`` with
  ``cls`` subscripted out of a module-level dict of classes returns the
  union of that dict's classes (this is how ``make_congestion_control``
  style dynamic dispatch stays visible to the analyses).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

from .ir import ModuleIR, Ref, iter_functions

__all__ = ["Program", "build_program"]

FuncIR = Dict[str, Any]
ClassIR = Dict[str, Any]


class Program:
    """The resolved whole program: modules, functions, classes, edges."""

    def __init__(self, modules: Dict[str, ModuleIR]) -> None:
        self.modules = modules
        #: function qname -> FuncIR (methods included, under Class.name)
        self.functions: Dict[str, FuncIR] = {}
        #: class qname -> ClassIR
        self.classes: Dict[str, ClassIR] = {}
        #: function qname -> owning module dotted name
        self.owner: Dict[str, str] = {}
        #: class qname -> direct subclasses
        self.subclasses: Dict[str, List[str]] = {}
        self._callee_cache: Dict[str, List[Tuple[Dict[str, Any],
                                                 List[str]]]] = {}
        self._export_cache: Dict[str, Optional[str]] = {}
        self._binding_stack: Set[Tuple[str, str]] = set()
        for mod_name, module in modules.items():
            for func in iter_functions(module):
                self.functions[func["qname"]] = func
                self.owner[func["qname"]] = mod_name
            for cls in module["classes"]:
                self.classes[cls["qname"]] = cls
                self.owner[cls["qname"]] = mod_name
        for cls in self.classes.values():
            for base in cls["bases"]:
                resolved = self.resolve_export(base)
                if resolved in self.classes:
                    self.subclasses.setdefault(resolved, []).append(
                        cls["qname"])
        for subs in self.subclasses.values():
            subs.sort()

    # ------------------------------------------------------------------
    # name resolution
    # ------------------------------------------------------------------
    def resolve_export(self, dotted: Optional[str]) -> Optional[str]:
        """Canonical function/class qname for a dotted path, or None.

        Chases ``__init__`` re-exports: if ``repro.tcp.congestion``
        imports ``Reno`` from ``.reno``, then
        ``repro.tcp.congestion.Reno`` resolves to
        ``repro.tcp.congestion.reno.Reno``.
        """
        if dotted is None:
            return None
        cached = self._export_cache.get(dotted, "?")
        if cached != "?":
            return cached
        result = self._resolve_export(dotted, seen=set())
        self._export_cache[dotted] = result
        return result

    def _resolve_export(self, dotted: str,
                        seen: Set[str]) -> Optional[str]:
        if dotted in seen:
            return None
        seen.add(dotted)
        if dotted in self.functions or dotted in self.classes:
            return dotted
        # longest module prefix
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            mod_name = ".".join(parts[:cut])
            module = self.modules.get(mod_name)
            if module is None:
                continue
            rest = parts[cut:]
            head, tail = rest[0], rest[1:]
            direct = f"{mod_name}.{head}"
            if direct in self.classes:
                if not tail:
                    return direct
                method = self.lookup_method(direct, tail[0])
                return method if method and not tail[1:] else None
            if direct in self.functions and not tail:
                return direct
            # re-export through the module's import table
            origin = module["imports"].get(head)
            if origin is not None:
                target = origin if not tail else ".".join([origin] + tail)
                return self._resolve_export(target, seen)
            return None
        return None

    # ------------------------------------------------------------------
    # class hierarchy
    # ------------------------------------------------------------------
    def lookup_method(self, cls_qname: str,
                      name: str) -> Optional[str]:
        """Qname of ``name`` on a class, walking bases depth-first."""
        seen: Set[str] = set()
        stack = [cls_qname]
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            cls = self.classes.get(current)
            if cls is None:
                continue
            candidate = f"{current}.{name}"
            if candidate in self.functions:
                return candidate
            for base in cls["bases"]:
                resolved = self.resolve_export(base)
                if resolved is not None:
                    stack.append(resolved)
        return None

    def descendants(self, cls_qname: str) -> List[str]:
        """All transitive subclasses (not including the class itself)."""
        out: List[str] = []
        seen: Set[str] = set()
        stack = list(self.subclasses.get(cls_qname, ()))
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            out.append(current)
            stack.extend(self.subclasses.get(current, ()))
        return sorted(out)

    def dispatch(self, cls_qname: str, name: str) -> List[str]:
        """Possible implementations of ``obj.name()`` for ``obj: cls``.

        The static target (found on the class or inherited) plus every
        subclass override — conservative virtual dispatch.
        """
        targets: List[str] = []
        static = self.lookup_method(cls_qname, name)
        if static is not None:
            targets.append(static)
        for sub in self.descendants(cls_qname):
            override = f"{sub}.{name}"
            if override in self.functions:
                targets.append(override)
        return sorted(set(targets))

    # ------------------------------------------------------------------
    # receiver typing
    # ------------------------------------------------------------------
    def _resolve_typeref(self, typeref: str,
                         module: ModuleIR) -> Optional[str]:
        """A type reference from an annotation/ctor into a class qname."""
        if typeref in self.classes:
            return typeref
        resolved = self.resolve_export(typeref)
        if resolved in self.classes:
            return resolved
        if "." not in typeref:
            local = f"{module['module']}.{typeref}"
            if local in self.classes:
                return local
            origin = module["imports"].get(typeref)
            if origin is not None:
                resolved = self.resolve_export(origin)
                if resolved in self.classes:
                    return resolved
        return None

    def _attr_types(self, cls: ClassIR, attr: str,
                    module: ModuleIR) -> List[str]:
        """Class qnames an instance attribute may hold."""
        out: List[str] = []
        for typeref in cls["attr_types"].get(attr, ()):
            resolved = self._resolve_typeref(typeref, module)
            if resolved is not None:
                out.append(resolved)
        # `self.attr = param` threaded through an annotated parameter
        for record in cls["attr_params"].get(attr, ()):
            method = self.functions.get(f"{cls['qname']}.{record['method']}")
            if method is None:
                continue
            annotation = (method.get("annotations") or {}).get(
                record["param"])
            if annotation is None:
                continue
            resolved = self._resolve_typeref(annotation, module)
            if resolved is not None:
                out.append(resolved)
        return sorted(set(out))

    def _local_receiver_types(self, func: FuncIR, name: str,
                              module: ModuleIR) -> List[str]:
        """Class qnames a local/parameter name may hold inside ``func``."""
        out: List[str] = []
        annotation = (func.get("annotations") or {}).get(name)
        if annotation is not None:
            resolved = self._resolve_typeref(annotation, module)
            if resolved is not None:
                out.append(resolved)
        for typeref in (func.get("local_types") or {}).get(name, ()):
            resolved = self._resolve_typeref(typeref, module)
            if resolved is not None:
                out.append(resolved)
        return sorted(set(out))

    def _factory_return_classes(self, callee: FuncIR) -> List[str]:
        """Classes a registry-factory function can return."""
        out: List[str] = []
        module = self.modules.get(self.owner.get(callee["qname"], ""), None)
        for typeref in callee.get("ret_types", ()):
            if module is not None:
                resolved = self._resolve_typeref(typeref, module)
                if resolved is not None:
                    out.append(resolved)
        if module is not None:
            for dict_name in callee.get("ret_class_dicts", ()):
                for entry in module["state"]:
                    if entry["name"] != dict_name:
                        continue
                    for value in entry.get("class_values", ()):
                        resolved = self.resolve_export(value)
                        if resolved in self.classes:
                            out.append(resolved)
        return sorted(set(out))

    # ------------------------------------------------------------------
    # call resolution
    # ------------------------------------------------------------------
    def _resolve_ref(self, func: FuncIR, ref: Ref) -> List[str]:
        """Function qnames a callable reference may denote."""
        kind = ref.get("k")
        module = self.modules.get(self.owner.get(func["qname"], ""), None)
        if kind == "func":
            qname = ref["q"]
            return [qname] if qname in self.functions else []
        if kind == "class":
            ctor = self.lookup_method(ref["q"], "__init__")
            return [ctor] if ctor is not None else []
        if kind == "dotted":
            resolved = self.resolve_export(ref["d"])
            if resolved is None:
                return []
            if resolved in self.functions:
                return [resolved]
            if resolved in self.classes:
                ctor = self.lookup_method(resolved, "__init__")
                return [ctor] if ctor is not None else []
            return []
        if kind == "self" and func.get("cls"):
            return self.dispatch(func["cls"], ref["a"])
        if kind == "sattr" and func.get("cls") and module is not None:
            cls = self.classes.get(func["cls"])
            if cls is None:
                return []
            out: List[str] = []
            for recv_cls in self._attr_types(cls, ref["o"], module):
                out.extend(self.dispatch(recv_cls, ref["a"]))
            return sorted(set(out))
        if kind == "nattr" and module is not None:
            out = []
            for recv_cls in self._local_receiver_types(
                    func, ref["o"], module):
                out.extend(self.dispatch(recv_cls, ref["a"]))
            if not out:
                out.extend(self._call_bound_dispatch(func, ref))
            return sorted(set(out))
        return []

    def _call_bound_dispatch(self, func: FuncIR, ref: Ref) -> List[str]:
        """``x = make_thing(...); x.m()`` — dispatch through the factory."""
        bindings = func.get("local_call_bindings") or {}
        index = bindings.get(ref["o"])
        if index is None or not (0 <= index < len(func["calls"])):
            return []
        # guard against self-referential bindings (``x = x.next()``)
        key = (func["qname"], ref["o"])
        if key in self._binding_stack:
            return []
        self._binding_stack.add(key)
        try:
            bound_call = func["calls"][index]
            out: List[str] = []
            for callee in self._resolve_ref(func, bound_call["target"]):
                for recv_cls in self.factory_classes(callee):
                    out.extend(self.dispatch(recv_cls, ref["a"]))
            return sorted(set(out))
        finally:
            self._binding_stack.discard(key)

    def callees(self, qname: str) -> List[Tuple[Dict[str, Any], List[str]]]:
        """[(call IR, [callee qnames])] for one function, cached."""
        cached = self._callee_cache.get(qname)
        if cached is not None:
            return cached
        func = self.functions.get(qname)
        if func is None:
            self._callee_cache[qname] = []
            return []
        out: List[Tuple[Dict[str, Any], List[str]]] = []
        for call in func["calls"]:
            out.append((call, self._resolve_ref(func, call["target"])))
        self._callee_cache[qname] = out
        return out

    def resolve_callable_ref(self, func: FuncIR, ref: Ref) -> List[str]:
        """Public wrapper: resolve a callback-argument reference."""
        return self._resolve_ref(func, ref)

    def factory_classes(self, qname: str) -> List[str]:
        """Classes returned by a (possibly registry-backed) factory."""
        func = self.functions.get(qname)
        if func is None:
            return []
        return self._factory_return_classes(func)

    # ------------------------------------------------------------------
    def iter_functions(self) -> Iterator[FuncIR]:
        for qname in sorted(self.functions):
            yield self.functions[qname]


def build_program(modules: Dict[str, ModuleIR]) -> Program:
    """Index modules and wire the class hierarchy into a Program."""
    return Program(modules)
