"""DET101: interprocedural entropy-taint analysis.

Sources are the per-file DET forbidden sets — wall clock, ``os.urandom``,
builtin ``hash``, module-level ``random``, ``uuid`` — observed as call
atoms in the IR.  Sinks are the places a nondeterministic value corrupts
the reproduction: simulator event scheduling, link delivery, journal
writers, and digest inputs.  The per-file rules flag a source *call
site*; this rule flags a source *value* that flows through any number of
assignments, returns, and parameters into a sink, and its finding
carries the full call chain so the laundering path is visible.

The analysis is summary-based: one fix-point computes, per function,
(a) whether its return value is intrinsically tainted, (b) which
parameters its return value depends on, and (c) which of its parameters
flow (transitively) into a sink.  Findings are then read off at sink
call sites and at call edges that feed a tainted value into a
sink-reaching parameter.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..findings import Finding
from .builder import Program

__all__ = ["SCHEDULE_ATTRS", "sink_kind_for_call", "check_taint"]

#: Simulator event-insertion methods (attr-name match: any ``x.schedule``
#: is treated as a sink — the conservative choice for the property that
#: underwrites every digest in the repo).
SCHEDULE_ATTRS = frozenset({"schedule", "schedule_at", "call_soon"})

#: Resolved-callee sinks: leaf qname suffix -> human description.
_SINK_SUFFIXES: Tuple[Tuple[str, str], ...] = (
    ("CampaignJournal.append", "the campaign journal"),
    ("Link.transmit", "link delivery"),
)
_SINK_LEAVES = {
    "run_digest": "the run digest",
    "config_digest": "the campaign config digest",
}

_MAX_CHAIN = 8
_MAX_ITERATIONS = 30

Witness = Dict[str, Any]   # {"origin": str, "chain": [str, ...]}


def _hop(program: Program, qname: str) -> str:
    func = program.functions.get(qname)
    module = program.modules.get(program.owner.get(qname, ""), None)
    if func is None or module is None:
        return qname
    return f"{qname} ({module['path']}:{func['line']})"


def sink_kind_for_call(program: Program, func: Dict[str, Any],
                       call: Dict[str, Any]) -> Optional[str]:
    """Human description of the sink a call site feeds, or None."""
    target = call["target"]
    if target.get("a") in SCHEDULE_ATTRS:
        return f"simulator event insertion (.{target['a']})"
    for callee in _resolved(program, func, call):
        for suffix, description in _SINK_SUFFIXES:
            if callee.endswith(suffix):
                return description
        leaf = callee.rsplit(".", 1)[-1]
        if leaf in _SINK_LEAVES:
            return _SINK_LEAVES[leaf]
    return None


def _resolved(program: Program, func: Dict[str, Any],
              call: Dict[str, Any]) -> List[str]:
    for known_call, callees in program.callees(func["qname"]):
        if known_call is call:
            return callees
    return program.resolve_callable_ref(func, call["target"])


def _callee_param_map(program: Program, callee_qname: str,
                      call: Dict[str, Any]) -> List[Tuple[str,
                                                          Dict[str, Any]]]:
    """(param name, arg IR) pairs for a resolved call edge."""
    callee = program.functions.get(callee_qname)
    if callee is None:
        return []
    params = list(callee["params"])
    if callee.get("cls") and params and params[0] in ("self", "cls"):
        params = params[1:]
    pairs = list(zip(params, call["args"]))
    for name, arg in (call.get("kwargs") or {}).items():
        if name in callee["params"]:
            pairs.append((name, arg))
    return pairs


class _TaintState:
    """Fix-point state shared by the summary computation and readout."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.ret_taint: Dict[str, Witness] = {}
        self.ret_dep: Dict[str, Set[str]] = {}
        self.param_sink: Dict[str, Dict[str, Witness]] = {}

    # ------------------------------------------------------------------
    def atom_taint(self, func: Dict[str, Any], atom: Sequence[Any],
                   depth: int = 0) -> Optional[Witness]:
        """Witness if an atom's value is intrinsically tainted."""
        if depth > _MAX_CHAIN or not atom:
            return None
        if atom[0] == "src":
            return {"origin": atom[1],
                    "chain": [f"`{atom[1]}()` at line {atom[2]}"]}
        if atom[0] != "call":
            return None
        index = atom[1]
        if not (0 <= index < len(func["calls"])):
            return None
        call = func["calls"][index]
        source = call.get("source")
        module = self.program.modules.get(
            self.program.owner.get(func["qname"], ""), None)
        path = module["path"] if module else "?"
        if source is not None:
            return {"origin": source,
                    "chain": [f"`{source}()` called at {path}:"
                              f"{call['line']}"]}
        for callee in _resolved(self.program, func, call):
            witness = self.ret_taint.get(callee)
            if witness is not None and len(witness["chain"]) < _MAX_CHAIN:
                return {
                    "origin": witness["origin"],
                    "chain": ([f"value returned by "
                               f"{_hop(self.program, callee)}, called at "
                               f"{path}:{call['line']}"]
                              + witness["chain"]),
                }
            # return value depends on a parameter fed a tainted argument
            deps = self.ret_dep.get(callee)
            if not deps:
                continue
            for param, arg in _callee_param_map(self.program, callee, call):
                if param not in deps:
                    continue
                for sub_atom in arg["atoms"]:
                    sub = self.atom_taint(func, sub_atom, depth + 1)
                    if sub is not None and len(sub["chain"]) < _MAX_CHAIN:
                        return {
                            "origin": sub["origin"],
                            "chain": (sub["chain"]
                                      + [f"passed through "
                                         f"{_hop(self.program, callee)} "
                                         f"(returns its `{param}`)"]),
                        }
        return None

    def atom_params(self, func: Dict[str, Any], atom: Sequence[Any],
                    depth: int = 0) -> Set[str]:
        """Parameters of ``func`` the atom's value may depend on."""
        if depth > _MAX_CHAIN or not atom:
            return set()
        if atom[0] == "param":
            return {atom[1]}
        if atom[0] != "call":
            return set()
        index = atom[1]
        if not (0 <= index < len(func["calls"])):
            return set()
        call = func["calls"][index]
        out: Set[str] = set()
        for callee in _resolved(self.program, func, call):
            deps = self.ret_dep.get(callee)
            if not deps:
                continue
            for param, arg in _callee_param_map(self.program, callee, call):
                if param not in deps:
                    continue
                for sub_atom in arg["atoms"]:
                    out |= self.atom_params(func, sub_atom, depth + 1)
        return out

    # ------------------------------------------------------------------
    def compute(self) -> None:
        functions = list(self.program.iter_functions())
        for _ in range(_MAX_ITERATIONS):
            changed = False
            for func in functions:
                qname = func["qname"]
                # (a) intrinsic return taint
                if qname not in self.ret_taint:
                    for atom in func["returns"]:
                        witness = self.atom_taint(func, atom)
                        if witness is not None:
                            self.ret_taint[qname] = witness
                            changed = True
                            break
                # (b) return -> parameter dependence
                deps: Set[str] = set()
                for atom in func["returns"]:
                    deps |= self.atom_params(func, atom)
                if deps - self.ret_dep.get(qname, set()):
                    self.ret_dep[qname] = (
                        self.ret_dep.get(qname, set()) | deps)
                    changed = True
                # (c) parameter -> sink flow
                changed |= self._param_sink_pass(func)
            if not changed:
                break

    def _param_sink_pass(self, func: Dict[str, Any]) -> bool:
        qname = func["qname"]
        table = self.param_sink.setdefault(qname, {})
        changed = False
        module = self.program.modules.get(
            self.program.owner.get(qname, ""), None)
        path = module["path"] if module else "?"
        for call in func["calls"]:
            sink = sink_kind_for_call(self.program, func, call)
            if sink is not None:
                for arg in list(call["args"]) + list(
                        (call.get("kwargs") or {}).values()):
                    for atom in arg["atoms"]:
                        for param in self.atom_params(func, atom):
                            if param not in table:
                                table[param] = {
                                    "sink": sink,
                                    "chain": [f"reaches {sink} at "
                                              f"{path}:{call['line']}"],
                                }
                                changed = True
            # transitively: argument feeds a sink-reaching parameter
            for callee in _resolved(self.program, func, call):
                callee_table = self.param_sink.get(callee)
                if not callee_table:
                    continue
                for param, arg in _callee_param_map(
                        self.program, callee, call):
                    witness = callee_table.get(param)
                    if witness is None or len(
                            witness["chain"]) >= _MAX_CHAIN:
                        continue
                    for atom in arg["atoms"]:
                        for own_param in self.atom_params(func, atom):
                            if own_param not in table:
                                table[own_param] = {
                                    "sink": witness["sink"],
                                    "chain": ([f"passed into `{param}` of "
                                               f"{_hop(self.program, callee)}"
                                               f" at {path}:{call['line']}"]
                                              + witness["chain"]),
                                }
                                changed = True
        return changed


def check_taint(program: Program) -> List[Finding]:
    """DET101 findings: entropy-source values reaching simulator sinks."""
    state = _TaintState(program)
    state.compute()
    findings: List[Finding] = []
    seen: Set[Tuple[str, int, str]] = set()

    def emit(path: str, line: int, col: int, origin: str,
             message: str, chain: List[str]) -> None:
        key = (path, line, origin)
        if key in seen:
            return
        seen.add(key)
        findings.append(Finding(
            path=path, line=line, col=col, code="DET101",
            message=message, chain=tuple(chain[:_MAX_CHAIN])))

    for func in program.iter_functions():
        module = program.modules.get(program.owner.get(func["qname"], ""))
        if module is None or not module["is_sim"]:
            continue
        path = module["path"]
        for call in func["calls"]:
            sink = sink_kind_for_call(program, func, call)
            if sink is not None:
                # tainted value arriving directly at a sink call site
                for arg in list(call["args"]) + list(
                        (call.get("kwargs") or {}).values()):
                    for atom in arg["atoms"]:
                        witness = state.atom_taint(func, atom)
                        if witness is not None:
                            emit(path, call["line"], call["col"],
                                 witness["origin"],
                                 f"entropy from `{witness['origin']}` "
                                 f"reaches {sink} in "
                                 f"{func['qname']}",
                                 witness["chain"]
                                 + [f"flows into {sink} at "
                                    f"{path}:{call['line']}"])
                continue
            # tainted value entering a sink-reaching parameter
            for callee in _resolved(program, func, call):
                callee_table = state.param_sink.get(callee)
                if not callee_table:
                    continue
                for param, arg in _callee_param_map(program, callee, call):
                    sink_witness = callee_table.get(param)
                    if sink_witness is None:
                        continue
                    for atom in arg["atoms"]:
                        taint_witness = state.atom_taint(func, atom)
                        if taint_witness is None:
                            continue
                        emit(path, call["line"], call["col"],
                             taint_witness["origin"],
                             f"entropy from `{taint_witness['origin']}` "
                             f"enters `{param}` of "
                             f"{callee.rsplit('.', 1)[-1]}() and reaches "
                             f"{sink_witness['sink']}",
                             taint_witness["chain"]
                             + [f"enters `{param}` of "
                                f"{_hop(program, callee)} at "
                                f"{path}:{call['line']}"]
                             + sink_witness["chain"])
    return findings
