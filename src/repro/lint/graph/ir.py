"""Per-module intermediate representation for the whole-program analyses.

One module is lowered into a plain-JSON document capturing exactly what
the graph rules need — call sites with resolved-as-far-as-possible
targets, taint atoms feeding returns and sink arguments, unit signatures,
impure-call sites, module-level state accesses — and nothing else.  The
AST is visited once per file per content hash; everything downstream
(call-graph assembly, taint, purity, races, unit flow) runs on the IR,
which is what makes the on-disk cache (:mod:`.cache`) sound: a file whose
bytes did not change contributes a byte-identical IR document.

Atoms
-----
Dataflow inside a function is summarized as *atoms*, the things a value
can transitively depend on::

    ["src", origin, line]   -- a direct entropy/wall-clock source call
    ["call", index]         -- the return value of calls[index]
    ["param", name]         -- one of the function's parameters

Assignments union atom sets; calls record their argument atom sets so the
interprocedural fix-point in :mod:`.taint` can evaluate them against
callee summaries without ever re-walking source.

Call-target references
----------------------
``target`` (and argument ``ref``\\ s, used for callback resolution) are
small tagged dicts::

    {"k": "dotted", "d": "time.time"}      -- import-resolved dotted path
    {"k": "func",   "q": "<qname>"}        -- function in this module
    {"k": "class",  "q": "<qname>"}        -- class in this module
    {"k": "name",   "n": "foo"}            -- unresolved bare name
    {"k": "self",   "a": "m"}              -- self.m(...)
    {"k": "sattr",  "o": "sim", "a": "x"}  -- self.sim.x(...)
    {"k": "nattr",  "o": "sim", "a": "x"}  -- sim.x(...) on a local name
    {"k": "attr",   "a": "x"}              -- x on an opaque receiver
"""

from __future__ import annotations

import ast
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple, Union

from ..rules import (_SIZE_SUFFIXES, _TIME_SUFFIXES, BlockingCallRule,
                     EntropySourceRule, WallClockRule, _infer_unit,
                     _suffix_unit)

__all__ = ["IR_VERSION", "ModuleIR", "extract_module", "module_name_for",
           "iter_functions", "Ref", "Atom"]

#: Bump whenever the IR schema or extraction logic changes: the content
#: hash cache keys on (source bytes, IR_VERSION), so stale cache entries
#: from an older analyzer can never be replayed.
IR_VERSION = "repro-lint-graph-2"

Ref = Dict[str, str]
Atom = List[Any]
ModuleIR = Dict[str, Any]
FuncNode = Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda]

_WALLCLOCK = frozenset(WallClockRule.FORBIDDEN)
_ENTROPY = frozenset(EntropySourceRule.FORBIDDEN) | frozenset({
    "uuid.uuid3", "uuid.uuid5"})
_BLOCKING_EXACT = frozenset(BlockingCallRule.FORBIDDEN_EXACT)
_BLOCKING_PREFIX = tuple(BlockingCallRule.FORBIDDEN_PREFIX)
_RANDOM_OK = frozenset({"random.Random", "random.SystemRandom"})

_MUTABLE_CTORS = frozenset({
    "list", "dict", "set", "bytearray", "defaultdict", "Counter",
    "OrderedDict", "deque", "collections.defaultdict",
    "collections.Counter", "collections.OrderedDict", "collections.deque",
})
_MUTATING_METHODS = frozenset({
    "append", "appendleft", "add", "update", "pop", "popitem", "insert",
    "extend", "extendleft", "setdefault", "clear", "remove", "discard",
    "sort", "reverse",
})
_FILE_WRITE_ATTRS = frozenset({"write", "writelines", "flush"})
#: Methods that grow their receiver (MEM001 cares about these inside
#: loops; `pop`/`clear`/`remove` shrink, so they are not listed).
_GROWTH_METHODS = frozenset({
    "append", "appendleft", "add", "extend", "extendleft", "insert",
    "setdefault", "update",
})


def module_name_for(path: str) -> Tuple[str, bool]:
    """(dotted module name, is_package) for a posix-style file path.

    ``src/repro/sim/engine.py`` -> ``repro.sim.engine``;
    ``src/repro/chaos/__init__.py`` -> ``repro.chaos`` (package);
    ``tests/test_x.py`` -> ``tests.test_x``.
    """
    parts = [p for p in path.replace("\\", "/").split("/")
             if p not in ("", ".")]
    if parts and parts[0] == "src":
        parts = parts[1:]
    if not parts:
        return "", False
    leaf = parts[-1]
    if leaf.endswith(".py"):
        leaf = leaf[:-3]
    if leaf == "__init__":
        return ".".join(parts[:-1]), True
    return ".".join(parts[:-1] + [leaf]), False


def _impure_kind(origin: str) -> Optional[str]:
    if origin in _WALLCLOCK:
        return "wall-clock"
    if origin in _ENTROPY:
        return "entropy"
    if origin in _BLOCKING_EXACT or origin.startswith(_BLOCKING_PREFIX):
        return "blocking"
    if (origin.startswith("random.") and origin.count(".") == 1
            and origin not in _RANDOM_OK):
        return "global-random"
    return None


def _taint_origin(origin: str) -> Optional[str]:
    """Entropy-source classification for the taint analysis."""
    if origin in _WALLCLOCK or origin in _ENTROPY:
        return origin
    if origin == "hash":
        return "hash"
    if (origin.startswith(("random.", "uuid."))
            and origin not in _RANDOM_OK and origin != "uuid.UUID"
            and origin.count(".") == 1):
        return origin
    return None


def _collect_locals(node: FuncNode) -> Tuple[Set[str], Set[str]]:
    """(names assigned locally, names declared global/nonlocal) in a body.

    Nested function/class bodies are not descended into — their scopes
    are their own — but their *names* are locals of this scope.
    """
    assigned: Set[str] = set()
    declared: Set[str] = set()
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.ClassDef)):
            assigned.add(child.name)
            continue
        if isinstance(child, ast.Lambda):
            continue
        if isinstance(child, (ast.Global, ast.Nonlocal)):
            declared.update(child.names)
            continue
        if isinstance(child, ast.Name) and isinstance(
                child.ctx, (ast.Store, ast.Del)):
            assigned.add(child.id)
        elif isinstance(child, (ast.Import, ast.ImportFrom)):
            for alias in child.names:
                assigned.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(child, ast.ExceptHandler) and child.name:
            assigned.add(child.name)
        stack.extend(ast.iter_child_nodes(child))
    return assigned - declared, declared


class _ImportTable:
    """Import-resolved name table for one module (incl. relative forms)."""

    def __init__(self, module: str, is_package: bool) -> None:
        self.module = module
        self.is_package = is_package
        self.names: Dict[str, str] = {}

    def _relative_base(self, level: int) -> str:
        parts = self.module.split(".") if self.module else []
        if not self.is_package:
            parts = parts[:-1]
        drop = level - 1
        if drop:
            parts = parts[:-drop] if drop <= len(parts) else []
        return ".".join(parts)

    def collect(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.names[alias.asname or alias.name] = alias.name
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    base = self._relative_base(node.level)
                    source = (f"{base}.{node.module}" if node.module and base
                              else (node.module or base))
                else:
                    source = node.module or ""
                if not source:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self.names[alias.asname or alias.name] = (
                        f"{source}.{alias.name}")

    def resolve(self, func: ast.expr) -> Optional[str]:
        """Dotted origin of an expression, or None (mirror of FileContext)."""
        chain: List[str] = []
        node = func
        while isinstance(node, ast.Attribute):
            chain.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        chain.reverse()
        base = node.id
        if base in self.names:
            return ".".join([self.names[base]] + chain)
        if not chain:
            return base
        return None


class _FunctionExtractor:
    """Lowers one function body into its FuncIR document."""

    def __init__(self, module: "_ModuleExtractor", qname: str,
                 node: FuncNode, cls: Optional[str]) -> None:
        self.mod = module
        self.qname = qname
        self.node = node
        self.cls = cls
        self.calls: List[Dict[str, Any]] = []
        args = node.args
        params = [a.arg for a in (args.posonlyargs + args.args
                                  + args.kwonlyargs)]
        if args.vararg is not None:
            params.append(args.vararg.arg)
        if args.kwarg is not None:
            params.append(args.kwarg.arg)
        local_names, global_names = _collect_locals(node)
        self.params = params
        self.param_set = set(params)
        self.locals = local_names | self.param_set
        self.declared_globals = global_names
        self.local_types: Dict[str, List[str]] = {}
        self.local_call_bindings: Dict[str, int] = {}
        self.local_atoms: Dict[str, List[Atom]] = {}
        self.bounded_strings: Set[str] = set()
        self.unbounded_strings: Set[str] = set()
        self.returns: List[Atom] = []
        self.ret_types: List[str] = []
        self.ret_class_dicts: List[str] = []
        self.ret_unit_exprs_t: List[Optional[str]] = []
        self.ret_unit_exprs_s: List[Optional[str]] = []
        self.impure: List[Dict[str, Any]] = []
        self.called_params: Set[str] = set()
        self.global_writes: List[Dict[str, Any]] = []
        self.module_loads: List[Dict[str, Any]] = []
        self.module_mutations: List[Dict[str, Any]] = []
        self.unbounded_sends: List[Dict[str, Any]] = []
        self.handle_writes: List[Dict[str, Any]] = []
        self.self_stores: List[Tuple[str, str]] = []   # (attr, param)
        self.self_attr_types: Dict[str, List[str]] = {}
        self.self_attr_calls: Set[str] = set()
        self.self_attr_opens: List[Dict[str, Any]] = []
        self.loop_depth = 0
        self.loop_growth: List[Dict[str, Any]] = []

    # ------------------------------------------------------------------
    # reference helpers
    # ------------------------------------------------------------------
    def _type_of_annotation(self, ann: Optional[ast.expr]) -> Optional[str]:
        if ann is None:
            return None
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            text = ann.value.strip()
            if text.isidentifier() or ("." in text and all(
                    p.isidentifier() for p in text.split("."))):
                return text
            return None
        if isinstance(ann, ast.Subscript):   # Optional[X] / List[X]: skip
            return None
        return self.mod.imports.resolve(ann)

    def _ref_of(self, node: ast.expr) -> Optional[Ref]:
        """A callable-valued expression -> reference, or None."""
        if isinstance(node, ast.Name):
            name = node.id
            bound = self.mod.nested_funcs.get(self.qname, {}).get(name)
            if bound is not None:
                return {"k": "func", "q": bound}
            if name in self.locals and name not in self.param_set:
                return {"k": "name", "n": name}
            if name in self.mod.function_names:
                return {"k": "func", "q": f"{self.mod.module}.{name}"}
            if name in self.mod.class_names:
                return {"k": "class", "q": f"{self.mod.module}.{name}"}
            dotted = self.mod.imports.names.get(name)
            if dotted is not None:
                return {"k": "dotted", "d": dotted}
            return {"k": "name", "n": name}
        if isinstance(node, ast.Attribute):
            inner = node.value
            if isinstance(inner, ast.Name):
                if inner.id == "self" and self.cls is not None:
                    return {"k": "self", "a": node.attr}
                dotted = self.mod.imports.resolve(node)
                if dotted is not None:
                    return {"k": "dotted", "d": dotted}
                return {"k": "nattr", "o": inner.id, "a": node.attr}
            if (isinstance(inner, ast.Attribute)
                    and isinstance(inner.value, ast.Name)
                    and inner.value.id == "self" and self.cls is not None):
                return {"k": "sattr", "o": inner.attr, "a": node.attr}
            dotted = self.mod.imports.resolve(node)
            if dotted is not None:
                return {"k": "dotted", "d": dotted}
            return {"k": "attr", "a": node.attr}
        if isinstance(node, ast.Lambda):
            qname = self.mod.lower_lambda(node, self.qname, self.cls)
            return {"k": "func", "q": qname}
        if isinstance(node, ast.Call):
            # functools.partial(f, ...): the callable is the first arg
            origin = self.mod.imports.resolve(node.func)
            if origin in ("functools.partial", "partial") and node.args:
                return self._ref_of(node.args[0])
        return None

    def _typeref_of_ctor(self, ref: Optional[Ref]) -> Optional[str]:
        """Class reference string when a call is (probably) a constructor."""
        if ref is None:
            return None
        if ref["k"] == "class":
            return ref["q"]
        if ref["k"] == "dotted":
            leaf = ref["d"].rsplit(".", 1)[-1]
            if leaf[:1].isupper():
                return ref["d"]
        return None

    # ------------------------------------------------------------------
    # atoms
    # ------------------------------------------------------------------
    def _atoms_of(self, node: ast.expr, out: List[Atom]) -> None:
        """Collect atoms for an expression, lowering calls on the way.

        This is the only place calls inside *value* expressions get
        lowered, so each call site yields exactly one IR entry.
        """
        if isinstance(node, ast.Name):
            if node.id in self.param_set:
                out.append(["param", node.id])
            elif node.id in self.local_atoms:
                out.extend(self.local_atoms[node.id])
            elif node.id in self.local_call_bindings:
                out.append(["call", self.local_call_bindings[node.id]])
            return
        if isinstance(node, ast.Call):
            out.append(["call", self._lower_call(node)])
            return
        if isinstance(node, ast.Lambda):
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._atoms_of(child, out)

    @staticmethod
    def _dedup_atoms(atoms: List[Atom], cap: int = 12) -> List[Atom]:
        seen: Set[str] = set()
        unique: List[Atom] = []
        for atom in atoms:
            key = repr(atom)
            if key not in seen:
                seen.add(key)
                unique.append(atom)
            if len(unique) >= cap:
                break
        return unique

    # ------------------------------------------------------------------
    # string boundedness (PAR003)
    # ------------------------------------------------------------------
    def _is_string_building(self, node: ast.expr) -> bool:
        if isinstance(node, ast.JoinedStr):
            return any(isinstance(v, ast.FormattedValue) for v in node.values)
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Mod)):
            for side in (node.left, node.right):
                if (isinstance(side, ast.Constant)
                        and isinstance(side.value, str)):
                    return True
            return (self._is_string_building(node.left)
                    or self._is_string_building(node.right))
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id in (
                    "str", "repr", "format"):
                return True
            if isinstance(node.func, ast.Attribute) and node.func.attr in (
                    "format", "join"):
                return True
        return False

    def _payload_unbounded(self, node: ast.expr) -> Optional[str]:
        """Why a pipe payload is not provably bounded, or None if fine."""
        if isinstance(node, ast.Subscript):   # sliced: provably truncated
            return None
        if self._is_string_building(node):
            return "built string is never truncated"
        if isinstance(node, ast.Name) and node.id in self.unbounded_strings:
            return f"`{node.id}` holds an untruncated built string"
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                why = self._payload_unbounded(child)
                if why is not None:
                    return why
        return None

    # ------------------------------------------------------------------
    # call lowering
    # ------------------------------------------------------------------
    def _arg_ir(self, node: ast.expr) -> Dict[str, Any]:
        atoms: List[Atom] = []
        self._atoms_of(node, atoms)
        arg: Dict[str, Any] = {"atoms": self._dedup_atoms(atoms)}
        unit_t = _infer_unit(node, _TIME_SUFFIXES)
        unit_s = _infer_unit(node, _SIZE_SUFFIXES)
        if isinstance(unit_t, str):
            arg["t"] = unit_t
        if isinstance(unit_s, str):
            arg["s"] = unit_s
        ref = self._ref_of(node)
        if ref is not None:
            arg["ref"] = ref
        return arg

    def _lower_call(self, node: ast.Call) -> int:
        target = self._ref_of(node.func)
        if target is None:
            target = ({"k": "attr", "a": "<expr>"}
                      if isinstance(node.func, ast.Attribute)
                      else {"k": "opaque"})
        call: Dict[str, Any] = {
            "line": node.lineno, "col": node.col_offset, "target": target,
            "args": [self._arg_ir(a) for a in node.args
                     if not isinstance(a, ast.Starred)],
        }
        kwargs = {kw.arg: self._arg_ir(kw.value)
                  for kw in node.keywords if kw.arg is not None}
        if kwargs:
            call["kwargs"] = kwargs
        index = len(self.calls)
        self.calls.append(call)

        # direct classification: entropy source / impure call
        kind = target.get("k")
        origin: Optional[str] = None
        if kind == "dotted":
            origin = target["d"]
        elif kind == "name":
            origin = target["n"]
        if origin is not None:
            taint = _taint_origin(origin)
            if taint is not None:
                call["source"] = taint
            impure = _impure_kind(origin)
            if impure is not None:
                self.impure.append({"origin": origin, "kind": impure,
                                    "line": node.lineno,
                                    "col": node.col_offset})
            if origin == "open":
                call["opens"] = True
        # called parameters: body invokes one of its own parameters
        if kind == "name" and target["n"] in self.param_set:
            self.called_params.add(target["n"])
        if kind == "self":
            self.self_attr_calls.add(target["a"])
        if target.get("a") in _FILE_WRITE_ATTRS and kind in (
                "self", "sattr", "nattr"):
            owner = target["a"] if kind == "self" else target.get("o", "")
            self.handle_writes.append(
                {"k": str(kind), "n": owner, "attr": target["a"],
                 "line": node.lineno})
        if target.get("a") == "send" and node.args and not isinstance(
                node.args[0], ast.Starred):
            why = self._payload_unbounded(node.args[0])
            if why is not None:
                self.unbounded_sends.append(
                    {"line": node.lineno, "col": node.col_offset,
                     "why": why})
        # mutating method on a module-level name
        if (isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.attr in _MUTATING_METHODS):
            self._note_module_access(node.func.value, mutation=node.func.attr)
        # container growth inside a loop (MEM001 raw material)
        if (self.loop_depth > 0 and isinstance(node.func, ast.Attribute)
                and node.func.attr in _GROWTH_METHODS):
            recv = node.func.value
            if isinstance(recv, ast.Name):
                self.loop_growth.append(
                    {"recv": recv.id, "how": node.func.attr,
                     "line": node.lineno, "col": node.col_offset})
            elif (isinstance(recv, ast.Attribute)
                    and isinstance(recv.value, ast.Name)
                    and recv.value.id == "self" and self.cls is not None):
                self.loop_growth.append(
                    {"recv": recv.attr, "how": node.func.attr,
                     "line": node.lineno, "col": node.col_offset,
                     "self": True})
        return index

    # ------------------------------------------------------------------
    # module-state bookkeeping
    # ------------------------------------------------------------------
    def _note_module_access(self, node: ast.Name,
                            mutation: Optional[str] = None) -> None:
        name = node.id
        if name in self.locals and name not in self.declared_globals:
            return
        if mutation is not None:
            self.module_mutations.append(
                {"name": name, "line": node.lineno, "how": mutation})
        else:
            self.module_loads.append({"name": name, "line": node.lineno})

    # ------------------------------------------------------------------
    # expression walking (names + calls, each lowered exactly once)
    # ------------------------------------------------------------------
    def _note_names(self, node: ast.AST) -> None:
        """Record module-name loads in an expression WITHOUT lowering calls
        (used on expressions whose calls were already lowered)."""
        if isinstance(node, ast.Name):
            if isinstance(node.ctx, ast.Load):
                self._note_module_access(node)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Lambda)):
            return
        for sub in ast.iter_child_nodes(node):
            self._note_names(sub)

    def _lower_expr(self, node: ast.expr) -> None:
        """Lower every call in an expression and record its name loads."""
        atoms: List[Atom] = []
        self._atoms_of(node, atoms)
        self._note_names(node)

    # ------------------------------------------------------------------
    # assignment handling
    # ------------------------------------------------------------------
    def _handle_assign_target(self, target: ast.expr, value: ast.expr,
                              line: int, atoms: List[Atom]) -> None:
        if isinstance(target, ast.Name):
            name = target.id
            if name in self.declared_globals:
                self.global_writes.append({"name": name, "line": line})
                self.module_mutations.append(
                    {"name": name, "line": line, "how": "global write"})
            self.local_atoms[name] = atoms
            if isinstance(value, ast.Call):
                typeref = self._typeref_of_ctor(self._ref_of(value.func))
                if typeref is not None:
                    self.local_types.setdefault(name, []).append(typeref)
                elif self.calls:
                    self.local_call_bindings[name] = len(self.calls) - 1
                if self.calls:
                    # unit of the assignment target, for return-unit flow
                    call_ir = self.calls[-1]
                    assign_t = _suffix_unit(name, _TIME_SUFFIXES)
                    assign_s = _suffix_unit(name, _SIZE_SUFFIXES)
                    if assign_t is not None:
                        call_ir["assign_t"] = assign_t
                    if assign_s is not None:
                        call_ir["assign_s"] = assign_s
            if isinstance(value, ast.Lambda):
                qname = self.mod.lower_lambda(value, self.qname, self.cls)
                self.mod.nested_funcs.setdefault(
                    self.qname, {})[name] = qname
            if isinstance(value, ast.Subscript):
                self.bounded_strings.add(name)
                self.unbounded_strings.discard(name)
            elif self._is_string_building(value):
                if name not in self.bounded_strings:
                    self.unbounded_strings.add(name)
        elif isinstance(target, ast.Subscript) and isinstance(
                target.value, ast.Name):
            self._note_module_access(target.value, mutation="[]=")
            if self.loop_depth > 0:
                self.loop_growth.append(
                    {"recv": target.value.id, "how": "[]=", "line": line,
                     "col": target.value.col_offset})
        elif isinstance(target, ast.Attribute):
            inner = target.value
            if (isinstance(inner, ast.Name) and inner.id == "self"
                    and self.cls is not None):
                if (isinstance(value, ast.Name)
                        and value.id in self.param_set):
                    self.self_stores.append((target.attr, value.id))
                if isinstance(value, ast.Call):
                    typeref = self._typeref_of_ctor(
                        self._ref_of(value.func))
                    if typeref is not None:
                        self.self_attr_types.setdefault(
                            target.attr, []).append(typeref)
                    if self.mod.imports.resolve(value.func) == "open":
                        self.self_attr_opens.append(
                            {"attr": target.attr, "line": line})
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._handle_assign_target(element, value, line, atoms)

    def _handle_return_value(self, value: ast.expr) -> None:
        atoms: List[Atom] = []
        self._atoms_of(value, atoms)
        self.returns = self._dedup_atoms(self.returns + atoms, cap=24)
        self._note_names(value)
        unit_t = _infer_unit(value, _TIME_SUFFIXES)
        unit_s = _infer_unit(value, _SIZE_SUFFIXES)
        self.ret_unit_exprs_t.append(
            unit_t if isinstance(unit_t, str) else None)
        self.ret_unit_exprs_s.append(
            unit_s if isinstance(unit_s, str) else None)
        if isinstance(value, ast.Call):
            typeref = self._typeref_of_ctor(self._ref_of(value.func))
            if typeref is not None:
                self.ret_types.append(typeref)
            elif isinstance(value.func, ast.Name):
                self._note_factory_return(value.func.id)

    def _note_factory_return(self, name: str) -> None:
        """Detect ``return cls(...)`` where cls was pulled from a class
        dict (``cls = _VARIANTS[key]``) — the registry-factory idiom."""
        for node in ast.walk(self.node):
            if (isinstance(node, ast.Assign) and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and node.targets[0].id == name
                    and isinstance(node.value, ast.Subscript)
                    and isinstance(node.value.value, ast.Name)):
                self.ret_class_dicts.append(node.value.value.id)

    # ------------------------------------------------------------------
    # the statement walk
    # ------------------------------------------------------------------
    def _walk(self, node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.For, ast.AsyncFor, ast.While)):
                self.loop_depth += 1
                try:
                    self._walk(child)
                finally:
                    self.loop_depth -= 1
                continue
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.mod.lower_function(child, parent_qname=self.qname,
                                        cls=self.cls)
                continue
            if isinstance(child, ast.ClassDef):
                continue   # nested classes: out of scope
            if isinstance(child, ast.Lambda):
                self.mod.lower_lambda(child, self.qname, self.cls)
                continue
            if isinstance(child, ast.expr):
                self._lower_expr(child)
                continue
            if isinstance(child, ast.Assign):
                atoms: List[Atom] = []
                self._atoms_of(child.value, atoms)
                atoms = self._dedup_atoms(atoms)
                for target in child.targets:
                    self._handle_assign_target(target, child.value,
                                               child.lineno, atoms)
                self._note_names(child.value)
                continue
            if isinstance(child, ast.AnnAssign):
                if child.value is not None:
                    ann_atoms: List[Atom] = []
                    self._atoms_of(child.value, ann_atoms)
                    self._handle_assign_target(
                        child.target, child.value, child.lineno,
                        self._dedup_atoms(ann_atoms))
                    self._note_names(child.value)
                continue
            if isinstance(child, ast.AugAssign):
                if isinstance(child.target, ast.Name):
                    name = child.target.id
                    if name in self.declared_globals:
                        self.global_writes.append(
                            {"name": name, "line": child.lineno})
                        self.module_mutations.append(
                            {"name": name, "line": child.lineno,
                             "how": "augmented assignment"})
                    aug_atoms: List[Atom] = []
                    self._atoms_of(child.value, aug_atoms)
                    merged = self.local_atoms.get(name, []) + aug_atoms
                    self.local_atoms[name] = self._dedup_atoms(merged)
                    self._note_names(child.value)
                elif isinstance(child.target, ast.Subscript) and isinstance(
                        child.target.value, ast.Name):
                    self._note_module_access(child.target.value,
                                             mutation="[]+=")
                    self._lower_expr(child.value)
                else:
                    self._lower_expr(child.value)
                continue
            if isinstance(child, ast.Return):
                if child.value is not None:
                    self._handle_return_value(child.value)
                continue
            if isinstance(child, (ast.Global, ast.Nonlocal)):
                continue
            self._walk(child)

    # ------------------------------------------------------------------
    def extract(self) -> Dict[str, Any]:
        node = self.node
        if isinstance(node, ast.Lambda):
            self._handle_return_value(node.body)
        else:
            self._walk(node)
        annotations: Dict[str, str] = {}
        if not isinstance(node, ast.Lambda):
            for arg in (node.args.posonlyargs + node.args.args
                        + node.args.kwonlyargs):
                typeref = self._type_of_annotation(arg.annotation)
                if typeref is not None:
                    annotations[arg.arg] = typeref
        name: Optional[str] = getattr(node, "name", None)
        ret_unit_t = _suffix_unit(name, _TIME_SUFFIXES)
        if ret_unit_t is None:
            seen_t = set(self.ret_unit_exprs_t)
            if len(seen_t) == 1 and None not in seen_t:
                ret_unit_t = seen_t.pop()
        ret_unit_s = _suffix_unit(name, _SIZE_SUFFIXES)
        if ret_unit_s is None:
            seen_s = set(self.ret_unit_exprs_s)
            if len(seen_s) == 1 and None not in seen_s:
                ret_unit_s = seen_s.pop()
        ir: Dict[str, Any] = {
            "qname": self.qname,
            "name": name or "<lambda>",
            "line": node.lineno,
            "cls": self.cls,
            "params": self.params,
            "calls": self.calls,
            "returns": self.returns,
        }
        if annotations:
            ir["annotations"] = annotations
        if ret_unit_t is not None:
            ir["ret_unit_t"] = ret_unit_t
        if ret_unit_s is not None:
            ir["ret_unit_s"] = ret_unit_s
        if self.ret_types:
            ir["ret_types"] = sorted(set(self.ret_types))
        if self.ret_class_dicts:
            ir["ret_class_dicts"] = sorted(set(self.ret_class_dicts))
        if self.impure:
            ir["impure"] = self.impure
        if self.called_params:
            ir["called_params"] = sorted(self.called_params)
        if self.global_writes:
            ir["global_writes"] = self.global_writes
        if self.module_loads:
            ir["module_loads"] = self.module_loads[:200]
        if self.module_mutations:
            ir["module_mutations"] = self.module_mutations
        if self.unbounded_sends:
            ir["unbounded_sends"] = self.unbounded_sends
        if self.handle_writes:
            ir["handle_writes"] = self.handle_writes
        if self.self_stores:
            ir["self_stores"] = [list(pair) for pair in self.self_stores]
        if self.self_attr_types:
            ir["self_attr_types"] = {
                k: sorted(set(v)) for k, v in self.self_attr_types.items()}
        if self.self_attr_calls:
            ir["self_attr_calls"] = sorted(self.self_attr_calls)
        if self.self_attr_opens:
            ir["self_attr_opens"] = self.self_attr_opens
        if self.loop_growth:
            ir["loop_growth"] = self.loop_growth[:100]
        if self.local_types:
            ir["local_types"] = {
                k: sorted(set(v)) for k, v in self.local_types.items()}
        if self.local_call_bindings:
            ir["local_call_bindings"] = dict(
                sorted(self.local_call_bindings.items()))
        return ir


class _ModuleExtractor:
    """Drives extraction of one module's IR document."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path.replace("\\", "/")
        self.module, self.is_package = module_name_for(self.path)
        self.imports = _ImportTable(self.module, self.is_package)
        self.imports.collect(tree)
        self.tree = tree
        self.functions: List[Dict[str, Any]] = []
        self.classes: List[Dict[str, Any]] = []
        self.state: List[Dict[str, Any]] = []
        self.function_names: Set[str] = set()
        self.class_names: Set[str] = set()
        self.nested_funcs: Dict[str, Dict[str, str]] = {}
        self._lambda_counter = 0
        self._current_class: Optional[Dict[str, Any]] = None
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.function_names.add(node.name)
            elif isinstance(node, ast.ClassDef):
                self.class_names.add(node.name)

    # ------------------------------------------------------------------
    def lower_function(self, node: Union[ast.FunctionDef,
                                         ast.AsyncFunctionDef],
                       parent_qname: Optional[str],
                       cls: Optional[str]) -> str:
        if parent_qname is None:
            base = (f"{cls}.{node.name}" if cls is not None
                    else f"{self.module}.{node.name}")
        else:
            base = f"{parent_qname}.{node.name}"
            self.nested_funcs.setdefault(parent_qname, {})[node.name] = base
        extractor = _FunctionExtractor(self, base, node, cls)
        ir = extractor.extract()
        if (cls is not None and parent_qname is None
                and self._current_class is not None):
            self._current_class["methods"].append(ir)
            for attr, param in extractor.self_stores:
                self._current_class["attr_params"].setdefault(
                    attr, []).append({"method": node.name, "param": param})
            for attr, types in extractor.self_attr_types.items():
                merged = self._current_class["attr_types"].setdefault(
                    attr, [])
                for typeref in types:
                    if typeref not in merged:
                        merged.append(typeref)
        else:
            self.functions.append(ir)
        return base

    def lower_lambda(self, node: ast.Lambda, parent_qname: str,
                     cls: Optional[str]) -> str:
        self._lambda_counter += 1
        qname = f"{parent_qname}.<lambda-{node.lineno}-{self._lambda_counter}>"
        extractor = _FunctionExtractor(self, qname, node, cls)
        ir = extractor.extract()
        self.functions.append(ir)
        return qname

    def lower_class(self, node: ast.ClassDef) -> None:
        qname = f"{self.module}.{node.name}"
        bases: List[str] = []
        for base_node in node.bases:
            dotted = self.imports.resolve(base_node)
            if dotted is not None:
                if dotted in self.class_names:
                    dotted = f"{self.module}.{dotted}"
                bases.append(dotted)
        cls_ir: Dict[str, Any] = {
            "qname": qname, "name": node.name, "line": node.lineno,
            "bases": bases, "methods": [], "attr_types": {},
            "attr_params": {},
        }
        self._current_class = cls_ir
        for child in node.body:
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.lower_function(child, parent_qname=None, cls=qname)
        self._current_class = None
        self.classes.append(cls_ir)

    # ------------------------------------------------------------------
    def lower_module_state(self) -> None:
        for node in self.tree.body:
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign):
                targets, value = list(node.targets), node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            if value is None:
                continue
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                entry = self._state_entry(target.id, target.lineno, value)
                if entry is not None:
                    self.state.append(entry)

    def _state_entry(self, name: str, line: int,
                     value: ast.expr) -> Optional[Dict[str, Any]]:
        if name.startswith("__") and name.endswith("__"):
            return None   # __all__ and friends are declarative, not state
        if isinstance(value, ast.Dict):
            class_values: List[str] = []
            for val in value.values:
                if isinstance(val, ast.Name) and val.id in self.class_names:
                    class_values.append(f"{self.module}.{val.id}")
                else:
                    dotted = (self.imports.resolve(val)
                              if isinstance(val, (ast.Name, ast.Attribute))
                              else None)
                    if dotted and dotted.rsplit(".", 1)[-1][:1].isupper():
                        class_values.append(dotted)
            entry: Dict[str, Any] = {"name": name, "line": line,
                                     "kind": "dict"}
            if class_values and len(class_values) == len(value.values):
                entry["class_values"] = class_values
            return entry
        if isinstance(value, (ast.List, ast.Set, ast.ListComp, ast.SetComp,
                              ast.DictComp)):
            return {"name": name, "line": line, "kind": "mutable"}
        if isinstance(value, ast.Call):
            origin = self.imports.resolve(value.func)
            if origin in _MUTABLE_CTORS:
                return {"name": name, "line": line, "kind": "mutable"}
            if origin == "open":
                return {"name": name, "line": line, "kind": "open"}
        return None

    # ------------------------------------------------------------------
    def extract(self) -> ModuleIR:
        for node in self.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.lower_function(node, parent_qname=None, cls=None)
            elif isinstance(node, ast.ClassDef):
                self.lower_class(node)
        self.lower_module_state()
        parts = self.path.split("/")
        is_sim = ("repro" in parts and "lint" not in parts
                  and not parts[-1].startswith("test_"))
        return {
            "version": IR_VERSION,
            "path": self.path,
            "module": self.module,
            "is_package": self.is_package,
            "is_sim": is_sim,
            "is_parallel": "parallel" in parts,
            "imports": dict(sorted(self.imports.names.items())),
            "functions": self.functions,
            "classes": self.classes,
            "state": self.state,
        }


def extract_module(path: str, source: str,
                   tree: Optional[ast.Module] = None) -> ModuleIR:
    """Lower one module to its IR document.

    Raises :class:`SyntaxError` if ``tree`` is not given and the source
    does not parse — callers report that through the PARSE finding of the
    per-file pass, so the graph layer simply skips unparsable modules.
    """
    if tree is None:
        tree = ast.parse(source, filename=path)
    return _ModuleExtractor(path, source, tree).extract()


def iter_functions(module_ir: ModuleIR) -> Iterator[Dict[str, Any]]:
    """Every function in a module IR: top-level, nested, lambdas, methods."""
    for func in module_ir["functions"]:
        yield func
    for cls in module_ir["classes"]:
        for method in cls["methods"]:
            yield method
