"""Run the whole-program rules and fold results into lint machinery.

The deep rules differ from per-file rules in shape — one analysis pass
produces findings for many files — so they register here as *metadata*
(code, summary, rationale, example) while the actual checks run once
over the assembled :class:`~.builder.Program`.  Findings then rejoin the
per-file pipeline: inline ``# repro-lint: disable=CODE`` suppressions on
the flagged line apply, ``line_text`` is filled for baseline matching,
and the engine merges and sorts them with the syntactic findings.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..engine import SUPPRESS_ALL, _suppressions
from ..findings import Finding
from .builder import Program, build_program
from .cache import GraphCache
from .ir import ModuleIR, extract_module
from .memgrowth import check_memgrowth
from .purity import check_purity
from .races import check_races
from .taint import check_taint
from .unitflow import check_unitflow

__all__ = ["GraphRule", "GraphReport", "all_graph_rules",
           "graph_rules_by_code", "analyze_program", "analyze_sources"]


@dataclass(frozen=True)
class GraphRule:
    """Catalogue entry for one whole-program diagnostic code."""

    code: str
    summary: str
    rationale: str
    example: str


_GRAPH_RULES: Tuple[GraphRule, ...] = (
    GraphRule(
        code="DET101",
        summary="entropy source flows through calls into a simulator sink",
        rationale=("A wall-clock or entropy read laundered through helper "
                   "functions still lands in schedule()/journal/digest "
                   "state; the per-file DET rules only see the call site, "
                   "this one follows the value."),
        example=("def jitter(): return time.time() % 1\n"
                 "def arm(sim): sim.schedule(jitter(), fire)"),
    ),
    GraphRule(
        code="SIM101",
        summary="impure call in a function reachable from Simulator.run",
        rationale=("Everything that executes under the event loop must be "
                   "pure: blocking I/O wedges the campaign, wall-clock and "
                   "entropy reads decouple replays.  Reachability is "
                   "computed over the call graph, including stored "
                   "callbacks (the Timer pattern)."),
        example=("def on_expiry(self):\n"
                 "    time.sleep(0.1)   # scheduled via sim.schedule"),
    ),
    GraphRule(
        code="MEM001",
        summary="per-item container growth in a campaign-scope loop",
        rationale=("A list/dict that grows per trial, per user, or per "
                   "shard inside a loop reachable from a campaign entry "
                   "point holds the whole population in memory; campaigns "
                   "sized in 10^5..10^6 users must stream through bounded "
                   "sketches or the journal instead."),
        example=("def run_campaign(configs):\n"
                 "    for config in configs:\n"
                 "        records.append(run_trial(config))"),
    ),
    GraphRule(
        code="PAR001",
        summary="module-level mutable state shared by supervisor and worker",
        rationale=("After fork() the two sides hold different copies; any "
                   "mutation one side makes is invisible to the other, so "
                   "code that reads the shared name is silently divergent."),
        example="_CACHE = {}  # touched by worker_main AND Supervisor",
    ),
    GraphRule(
        code="PAR002",
        summary="worker-side write to a fork-inherited module global",
        rationale=("A worker mutating a module global changes only its own "
                   "copy — the supervisor and sibling workers never see "
                   "it, which breaks the single-writer merge discipline."),
        example="def worker_main(...):\n    _SEEN.add(task.position)",
    ),
    GraphRule(
        code="PAR003",
        summary="pipe send() payload not provably < PIPE_BUF",
        rationale=("Status tuples stay atomic only below PIPE_BUF; an "
                   "untruncated f-string or str() payload can exceed it "
                   "and interleave with a sibling's write."),
        example="status.send((kind, f\"worker failed: {exc}\"))",
    ),
    GraphRule(
        code="PAR004",
        summary="file handle opened pre-fork but written post-fork",
        rationale=("Parent and child share one file offset for handles "
                   "opened before fork(); concurrent writes corrupt the "
                   "journal.  Open inside the worker, after the fork."),
        example="_LOG = open(path, 'a')\ndef worker_main(...): _LOG.write(x)",
    ),
    GraphRule(
        code="UNIT101",
        summary="time-unit mismatch across a call or return edge",
        rationale=("A seconds value passed into a `_ms` parameter is the "
                   "same silent 1000x as UNIT001, one stack frame later; "
                   "suffix inference is propagated through signatures and "
                   "returns."),
        example="def wait(delay_ms): ...\nwait(rto_s)",
    ),
    GraphRule(
        code="UNIT102",
        summary="size/rate-unit mismatch across a call or return edge",
        rationale=("Bytes into a `_bits` parameter is a silent 8x in the "
                   "byte accounting that reproduction fidelity rests on."),
        example="def enqueue(size_bits): ...\nenqueue(payload_bytes)",
    ),
)


def all_graph_rules() -> List[GraphRule]:
    return list(_GRAPH_RULES)


def graph_rules_by_code() -> Dict[str, GraphRule]:
    return {rule.code: rule for rule in _GRAPH_RULES}


@dataclass
class GraphReport:
    """Outcome of one whole-program analysis pass."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    modules: int = 0
    cache_hits: int = 0
    cache_misses: int = 0


def analyze_program(program: Program) -> List[Finding]:
    """Run every deep rule over an assembled program (no suppressions)."""
    findings: List[Finding] = []
    findings.extend(check_taint(program))
    findings.extend(check_purity(program))
    findings.extend(check_memgrowth(program))
    findings.extend(check_races(program))
    findings.extend(check_unitflow(program))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings


def analyze_sources(sources: Sequence[Tuple[str, str]],
                    cache: Optional[GraphCache] = None,
                    codes: Optional[Sequence[str]] = None) -> GraphReport:
    """Whole-program analysis over (path, source) pairs.

    Parses/extracts each module (via the content-hash cache when given),
    builds the program, runs the deep rules, then applies per-line inline
    suppressions and fills ``line_text`` so findings integrate with the
    baseline machinery.  Unparsable files are skipped here — the per-file
    pass reports them as PARSE findings.
    """
    cache = cache if cache is not None else GraphCache(None)
    modules: Dict[str, ModuleIR] = {}
    lines_by_path: Dict[str, List[str]] = {}
    suppress_by_path: Dict[str, Dict[str, set]] = {}
    for path, source in sources:
        posix = path.replace("\\", "/")
        ir = cache.load(posix, source)
        if ir is None:
            try:
                ir = extract_module(posix, source)
            except SyntaxError:
                continue
            cache.store(posix, source, ir)
        modules[ir["module"]] = ir
        lines_by_path[posix] = source.splitlines()
        suppress_by_path[posix] = {
            str(line): codes_set
            for line, codes_set in _suppressions(source).items()}

    program = build_program(modules)
    raw = analyze_program(program)
    if codes is not None:
        wanted = set(codes)
        raw = [f for f in raw if f.code in wanted]

    report = GraphReport(modules=len(modules),
                         cache_hits=cache.hits,
                         cache_misses=cache.misses)
    for finding in raw:
        suppressed_codes = suppress_by_path.get(finding.path, {}).get(
            str(finding.line), set())
        if (SUPPRESS_ALL.upper() in suppressed_codes
                or finding.code in suppressed_codes):
            report.suppressed += 1
            continue
        lines = lines_by_path.get(finding.path, [])
        text = (lines[finding.line - 1].strip()
                if 1 <= finding.line <= len(lines) else "")
        report.findings.append(replace(finding, line_text=text))
    return report
