"""UNIT101/UNIT102: unit-suffix flow across function boundaries.

The per-file UNIT001/UNIT002 rules catch ``x_ms + y_s`` inside one
expression.  These rules catch the same mistake at *call edges*: a value
whose name says seconds passed into a parameter whose name says
milliseconds (UNIT101, time units), or bytes into bits (UNIT102,
size/rate units), and a call's return unit (from the callee's name
suffix or its uniformly-suffixed return expressions) disagreeing with
the unit of the name it is assigned to.

Both sides must carry a known unit from the same table before anything
is flagged — multiplication/division (the idiom for explicit
conversion) erases units at extraction time, exactly like the per-file
rules.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from ..findings import Finding
from .builder import Program
from .taint import _callee_param_map, _hop
from ..rules import _SIZE_SUFFIXES, _TIME_SUFFIXES, _suffix_unit

__all__ = ["check_unitflow"]

_TABLES: Tuple[Tuple[str, str, str, Any], ...] = (
    ("UNIT101", "time", "t", _TIME_SUFFIXES),
    ("UNIT102", "size/rate", "s", _SIZE_SUFFIXES),
)


def check_unitflow(program: Program) -> List[Finding]:
    findings: List[Finding] = []
    for func in program.iter_functions():
        module = program.modules.get(program.owner.get(func["qname"], ""))
        if module is None:
            continue
        path = module["path"]
        for call, callees in program.callees(func["qname"]):
            for callee_qname in callees:
                callee = program.functions.get(callee_qname)
                if callee is None:
                    continue
                pairs = _callee_param_map(program, callee_qname, call)
                for code, flavor, key, table in _TABLES:
                    # argument unit vs parameter-name unit
                    for param, arg in pairs:
                        arg_unit = arg.get(key)
                        param_unit = _suffix_unit(param, table)
                        if (arg_unit is not None and param_unit is not None
                                and arg_unit != param_unit):
                            findings.append(Finding(
                                path=path, line=call["line"],
                                col=call["col"], code=code,
                                message=(f"{flavor} unit mismatch at call "
                                         f"edge: `{arg_unit}` value passed "
                                         f"into `{param}` "
                                         f"(`{param_unit}`) of "
                                         f"{callee_qname.rsplit('.', 1)[-1]}"
                                         f"()"),
                                chain=(f"caller: {_hop(program, func['qname'])}",
                                       f"callee: "
                                       f"{_hop(program, callee_qname)}")))
                    # return unit vs assignment-target unit
                    ret_unit = callee.get(f"ret_unit_{key}")
                    assign_unit = call.get(f"assign_{key}")
                    if (ret_unit is not None and assign_unit is not None
                            and ret_unit != assign_unit):
                        findings.append(Finding(
                            path=path, line=call["line"], col=call["col"],
                            code=code,
                            message=(f"{flavor} unit mismatch at return "
                                     f"edge: "
                                     f"{callee_qname.rsplit('.', 1)[-1]}() "
                                     f"returns `{ret_unit}` but the result "
                                     f"is bound to a `{assign_unit}` "
                                     f"name"),
                            chain=(f"caller: {_hop(program, func['qname'])}",
                                   f"callee: "
                                   f"{_hop(program, callee_qname)}")))
    return findings
