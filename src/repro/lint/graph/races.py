"""PAR0xx: static race detection for the fork-based worker layer.

The parallel supervisor's merge-determinism contract (PR 8) rests on
process isolation: workers share nothing with the supervisor except the
task/status pipes.  These rules check the assumptions statically, over
the call graph, for every module under ``repro/parallel``:

PAR001
    Module-level mutable state reachable from both the ``worker_main``
    side and the ``Supervisor`` side, with at least one mutation.  After
    ``fork()`` the two sides see *different copies*; code that reads a
    value the other side "wrote" is silently wrong.
PAR002
    Writes to fork-inherited module globals from worker-side code.  The
    write is invisible to the supervisor and to every sibling worker.
PAR003
    Pipe ``send()`` payloads not provably bounded: a built string
    (f-string, ``str()``, concatenation) sent without truncation can
    exceed PIPE_BUF and lose write atomicity.
PAR004
    File handles opened before the fork (module level, or stored on an
    object by a non-worker method) but written by worker-side code: both
    processes share one file offset, so interleaved writes corrupt.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from ..findings import Finding
from .builder import Program
from .taint import _hop

__all__ = ["check_races"]

_MAX_CHAIN = 8


def _closure(program: Program, roots: List[str]) -> Dict[str, List[str]]:
    """qname -> hop chain from the nearest root, over call edges."""
    chains: Dict[str, List[str]] = {
        qname: [_hop(program, qname)] for qname in roots
        if qname in program.functions}
    queue = sorted(chains)
    while queue:
        current = queue.pop(0)
        chain = chains[current]
        if len(chain) >= _MAX_CHAIN:
            continue
        for _call, callees in program.callees(current):
            for callee in callees:
                if callee not in chains:
                    chains[callee] = chain + [_hop(program, callee)]
                    queue.append(callee)
    return chains


def _worker_roots(program: Program) -> List[str]:
    return [qname for qname in program.functions
            if qname.rsplit(".", 1)[-1] == "worker_main"
            and _in_parallel(program, qname)]


def _supervisor_roots(program: Program) -> List[str]:
    roots: List[str] = []
    for cls_qname, cls in program.classes.items():
        if not _in_parallel(program, cls_qname):
            continue
        if "supervisor" not in cls["name"].lower():
            continue
        roots.extend(f"{cls_qname}.{m['name']}" for m in cls["methods"])
    return sorted(roots)


def _in_parallel(program: Program, qname: str) -> bool:
    module = program.modules.get(program.owner.get(qname, ""))
    return bool(module and module["is_parallel"])


def _parallel_modules(program: Program) -> List[Dict[str, Any]]:
    return [module for _name, module in sorted(program.modules.items())
            if module["is_parallel"]]


def _state_accesses(
        program: Program, module: Dict[str, Any], state_name: str,
        side: Dict[str, List[str]]) -> List[Tuple[str, Dict[str, Any]]]:
    """(qname, access record) for reachable functions touching a global."""
    out: List[Tuple[str, Dict[str, Any]]] = []
    mod_name = module["module"]
    for qname in sorted(side):
        if program.owner.get(qname) != mod_name:
            continue
        func = program.functions[qname]
        for record in list(func.get("module_loads", ())) + list(
                func.get("module_mutations", ())):
            if record["name"] == state_name:
                out.append((qname, record))
    return out


def _mutations(program: Program, module: Dict[str, Any],
               state_name: str) -> List[Tuple[str, Dict[str, Any]]]:
    out: List[Tuple[str, Dict[str, Any]]] = []
    mod_name = module["module"]
    for qname, func in sorted(program.functions.items()):
        if program.owner.get(qname) != mod_name:
            continue
        for record in func.get("module_mutations", ()):
            if record["name"] == state_name:
                out.append((qname, record))
    return out


def check_races(program: Program) -> List[Finding]:
    findings: List[Finding] = []
    worker = _closure(program, _worker_roots(program))
    supervisor = _closure(program, _supervisor_roots(program))

    for module in _parallel_modules(program):
        path = module["path"]

        # ------------------------------------------------------ PAR001
        for entry in module["state"]:
            if entry["kind"] not in ("mutable", "dict"):
                continue
            name = entry["name"]
            worker_uses = _state_accesses(program, module, name, worker)
            super_uses = _state_accesses(program, module, name, supervisor)
            mutations = _mutations(program, module, name)
            if worker_uses and super_uses and mutations:
                mut_qname, mut = mutations[0]
                chain = (
                    [f"defined at {path}:{entry['line']}"]
                    + [f"worker side: {_hop(program, q)} touches it at "
                       f"line {r['line']} (via "
                       f"{' -> '.join(worker[q][:3])})"
                       for q, r in worker_uses[:2]]
                    + [f"supervisor side: {_hop(program, q)} touches it "
                       f"at line {r['line']} (via "
                       f"{' -> '.join(supervisor[q][:3])})"
                       for q, r in super_uses[:2]]
                    + [f"mutated ({mut['how']}) in "
                       f"{_hop(program, mut_qname)} at line {mut['line']}"])
                findings.append(Finding(
                    path=path, line=entry["line"], col=0, code="PAR001",
                    message=(f"module-level mutable `{name}` is reachable "
                             f"from both worker_main and the Supervisor "
                             f"and is mutated; after fork each process "
                             f"sees a different copy"),
                    chain=tuple(chain[:_MAX_CHAIN])))

        # ------------------------------------------------------ PAR002
        state_names = {entry["name"] for entry in module["state"]}
        for qname in sorted(worker):
            if program.owner.get(qname) != module["module"]:
                continue
            func = program.functions[qname]
            for record in list(func.get("global_writes", ())) + [
                    r for r in func.get("module_mutations", ())
                    if r["name"] in state_names]:
                findings.append(Finding(
                    path=path, line=record["line"], col=0, code="PAR002",
                    message=(f"worker-side write to fork-inherited global "
                             f"`{record['name']}` in {qname}: invisible to "
                             f"the supervisor and to sibling workers"),
                    chain=tuple(worker[qname][:_MAX_CHAIN])))

        # ------------------------------------------------------ PAR003
        for qname, func in sorted(program.functions.items()):
            if program.owner.get(qname) != module["module"]:
                continue
            for record in func.get("unbounded_sends", ()):
                findings.append(Finding(
                    path=path, line=record["line"], col=record["col"],
                    code="PAR003",
                    message=(f"pipe payload in {qname} is not provably "
                             f"< PIPE_BUF: {record['why']}; truncate "
                             f"(e.g. `extra[:400]`) before send() to keep "
                             f"the write atomic"),
                    chain=()))

        # ------------------------------------------------------ PAR004
        open_state = {entry["name"]: entry for entry in module["state"]
                      if entry["kind"] == "open"}
        for qname in sorted(worker):
            if program.owner.get(qname) != module["module"]:
                continue
            func = program.functions[qname]
            for record in func.get("handle_writes", ()):
                entry = open_state.get(record["n"])
                if record["k"] == "nattr" and entry is not None:
                    findings.append(Finding(
                        path=path, line=record["line"], col=0,
                        code="PAR004",
                        message=(f"`{record['n']}` is opened at module "
                                 f"level (pre-fork, {path}:"
                                 f"{entry['line']}) but written by "
                                 f"worker-side {qname}: parent and child "
                                 f"share one file offset"),
                        chain=tuple(worker[qname][:_MAX_CHAIN])))
        # handles opened on self by a supervisor-side method, written by
        # a worker-side method of the same class
        for cls_qname, cls in sorted(program.classes.items()):
            if program.owner.get(cls_qname) != module["module"]:
                continue
            opened: Dict[str, Tuple[str, int]] = {}
            for method in cls["methods"]:
                for record in method.get("self_attr_opens", ()):
                    owner_q = method["qname"]
                    if owner_q not in worker:
                        opened[record["attr"]] = (owner_q, record["line"])
            if not opened:
                continue
            for method in cls["methods"]:
                if method["qname"] not in worker:
                    continue
                for record in method.get("handle_writes", ()):
                    if record["k"] == "self" and record["n"] in opened:
                        owner_q, open_line = opened[record["n"]]
                        findings.append(Finding(
                            path=path, line=record["line"], col=0,
                            code="PAR004",
                            message=(f"`self.{record['n']}` opened "
                                     f"pre-fork in {owner_q} (line "
                                     f"{open_line}) but written post-fork "
                                     f"in worker-side {method['qname']}: "
                                     f"shared file offset"),
                            chain=tuple(worker[method["qname"]]
                                        [:_MAX_CHAIN])))
    return findings
