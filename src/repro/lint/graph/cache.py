"""Content-hash-keyed on-disk cache for per-module IR documents.

The IR for a module depends only on (its source bytes, the analyzer
version), so the cache key is ``sha256(IR_VERSION || source)``.  One JSON
file per analyzed source path lives under the cache directory, named by
the sha256 of the *path* so arbitrary paths map to flat filenames.  A
warm run therefore never re-parses an untouched file; touching one file
invalidates exactly that file's entry (the CI cache smoke asserts this
via the hit/miss counters below).

Writes are atomic (tempfile + rename) so a crashed run can never leave a
torn JSON document for the next run to trip over; a corrupt or
version-skewed entry is treated as a miss and silently rebuilt.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Any, Dict, Optional

from .ir import IR_VERSION, ModuleIR

__all__ = ["GraphCache", "DEFAULT_CACHE_DIR"]

DEFAULT_CACHE_DIR = ".repro-lint-cache"


def _content_key(source: str) -> str:
    digest = hashlib.sha256()
    digest.update(IR_VERSION.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(source.encode("utf-8"))
    return digest.hexdigest()


class GraphCache:
    """Load/store IR documents keyed by source content hash.

    ``directory=None`` disables persistence: every lookup misses and
    stores are dropped, which keeps the driver code branch-free.
    """

    def __init__(self, directory: Optional[str] = None) -> None:
        self.directory = directory
        self.hits = 0
        self.misses = 0
        self._created = False

    # ------------------------------------------------------------------
    def _entry_path(self, path: str) -> str:
        assert self.directory is not None
        name = hashlib.sha256(path.encode("utf-8")).hexdigest()[:32]
        return os.path.join(self.directory, f"{name}.json")

    def load(self, path: str, source: str) -> Optional[ModuleIR]:
        """The cached IR for (path, source), or None on a miss."""
        if self.directory is None:
            self.misses += 1
            return None
        entry_path = self._entry_path(path)
        try:
            with open(entry_path, "r", encoding="utf-8") as handle:
                entry: Dict[str, Any] = json.load(handle)
        except (OSError, ValueError):
            self.misses += 1
            return None
        if entry.get("key") != _content_key(source):
            self.misses += 1
            return None
        ir = entry.get("ir")
        if not isinstance(ir, dict) or ir.get("version") != IR_VERSION:
            self.misses += 1
            return None
        self.hits += 1
        return ir

    def store(self, path: str, source: str, ir: ModuleIR) -> None:
        if self.directory is None:
            return
        if not self._created:
            os.makedirs(self.directory, exist_ok=True)
            self._created = True
        entry = {"key": _content_key(source), "path": path, "ir": ir}
        fd, tmp_path = tempfile.mkstemp(
            dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(entry, handle, separators=(",", ":"))
            os.replace(tmp_path, self._entry_path(path))
        except OSError:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses}
