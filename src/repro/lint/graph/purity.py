"""SIM101: sim-purity reachability over the call graph.

Every function that can execute under ``Simulator.run`` dispatch — a
callback handed to ``schedule``/``schedule_at``/``call_soon``, a callback
stored by a Timer-style class and fired from a scheduled method, or
anything those functions call — must be free of blocking I/O, wall-clock
reads, and ambient entropy.  The per-file SIM001/DET001 rules check this
one file at a time; this rule computes the *reachable set* and reports
the impure call together with the dispatch path that reaches it.

Roots
-----
* resolved callback arguments at every ``schedule``/``schedule_at``
  (argument 1) and ``call_soon`` (argument 0) call site, plus any extra
  ``*args`` position holding a resolvable callable reference;
* constructor arguments bound to parameters a class stores into an
  attribute it later calls (``self._callback = callback`` in
  ``__init__``; ``self._callback(...)`` in ``_fire`` — the Timer
  pattern);
* parameters a reachable function invokes directly (``called_params``)
  — the callable fed at any call edge into that parameter is reachable.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from ..findings import Finding
from .builder import Program
from .taint import SCHEDULE_ATTRS, _hop

__all__ = ["check_purity", "reachable_from_dispatch"]

_MAX_CHAIN = 8


def _callback_arg_indices(attr: str) -> int:
    """First argument index that holds a callback for a dispatch method."""
    return 0 if attr == "call_soon" else 1


def _callback_storing_attrs(program: Program,
                            cls: Dict[str, Any]) -> Dict[str, str]:
    """attr -> ctor param, for attrs stored from a param and later called.

    ``self._callback = callback`` in ``__init__`` plus a
    ``self._callback(...)`` call anywhere in the class marks the
    ``callback`` constructor parameter as dispatch-carrying.
    """
    called_attrs: Set[str] = set()
    for method in cls["methods"]:
        for attr in method.get("self_attr_calls", ()):
            if program.lookup_method(cls["qname"], attr) is None:
                called_attrs.add(attr)
    out: Dict[str, str] = {}
    for attr in called_attrs:
        for record in cls["attr_params"].get(attr, ()):
            if record["method"] == "__init__":
                out[attr] = record["param"]
    return out


def _ctor_param_index(program: Program, cls_qname: str,
                      param: str) -> Optional[int]:
    ctor = program.functions.get(f"{cls_qname}.__init__")
    if ctor is None:
        return None
    params = [p for p in ctor["params"] if p not in ("self", "cls")]
    try:
        return params.index(param)
    except ValueError:
        return None


def _collect_roots(program: Program) -> Dict[str, List[str]]:
    """root function qname -> chain prefix describing how it's dispatched."""
    roots: Dict[str, List[str]] = {}

    def add(qname: str, via: str) -> None:
        if qname in program.functions and qname not in roots:
            roots[qname] = [via]

    # Simulator.run itself anchors the dispatch loop; Supervisor.run is
    # the supervision loop — its retry/backoff logic must run on the
    # injected clock/sleep, never the real ones, so supervision tests
    # run without real sleeps.
    for qname in program.functions:
        if qname.endswith("Simulator.run"):
            add(qname, f"{_hop(program, qname)} is the dispatch loop")
        elif qname.endswith("Supervisor.run"):
            add(qname, f"{_hop(program, qname)} is the supervision loop")

    # callback-storing classes (Timer pattern): map class -> {index: attr}
    stored: Dict[str, Dict[int, str]] = {}
    for cls_qname, cls in program.classes.items():
        for attr, param in _callback_storing_attrs(program, cls).items():
            index = _ctor_param_index(program, cls_qname, param)
            if index is not None:
                stored.setdefault(cls_qname, {})[index] = attr

    for func in program.iter_functions():
        module = program.modules.get(program.owner.get(func["qname"], ""))
        path = module["path"] if module else "?"
        for call, callees in program.callees(func["qname"]):
            target = call["target"]
            # schedule/schedule_at/call_soon callback arguments
            if target.get("a") in SCHEDULE_ATTRS:
                start = _callback_arg_indices(target["a"])
                for arg in call["args"][start:]:
                    ref = arg.get("ref")
                    if ref is None:
                        continue
                    for cb in program.resolve_callable_ref(func, ref):
                        add(cb, f"scheduled via .{target['a']} at "
                                f"{path}:{call['line']}")
            # constructor calls into callback-storing classes
            for callee in callees:
                if not callee.endswith(".__init__"):
                    continue
                cls_qname = callee.rsplit(".", 1)[0]
                slots = stored.get(cls_qname)
                if not slots:
                    continue
                for index, attr in slots.items():
                    if index < len(call["args"]):
                        ref = call["args"][index].get("ref")
                        if ref is None:
                            continue
                        for cb in program.resolve_callable_ref(func, ref):
                            add(cb, f"stored as {cls_qname.rsplit('.')[-1]}"
                                    f".{attr} at {path}:{call['line']} and "
                                    f"fired from a scheduled method")
    return roots


def reachable_from_dispatch(
        program: Program) -> Dict[str, List[str]]:
    """qname -> chain of hops from a dispatch root, for every function
    that can run under ``Simulator.run``."""
    roots = _collect_roots(program)
    chains: Dict[str, List[str]] = {
        qname: list(prefix) + [_hop(program, qname)]
        for qname, prefix in roots.items()}
    queue = sorted(chains)
    while queue:
        current = queue.pop(0)
        chain = chains[current]
        if len(chain) >= _MAX_CHAIN:
            continue
        func = program.functions[current]
        for call, callees in program.callees(current):
            # callbacks forwarded into dispatch positions inside a
            # reachable function are reachable too
            for arg in list(call["args"]) + list(
                    (call.get("kwargs") or {}).values()):
                ref = arg.get("ref")
                if ref is None:
                    continue
                for cb in program.resolve_callable_ref(func, ref):
                    callee_fn = program.functions.get(cb)
                    if callee_fn is None or cb in chains:
                        continue
                    # only treat as reachable when the receiver invokes it
                    forwarded = any(
                        p in (program.functions.get(c, {}).get(
                            "called_params") or ())
                        for c in callees for p, a in _args_to_params(
                            program, c, call) if a is arg)
                    if forwarded:
                        chains[cb] = chain + [_hop(program, cb)]
                        queue.append(cb)
            for callee in callees:
                if callee not in chains:
                    chains[callee] = chain + [_hop(program, callee)]
                    queue.append(callee)
    return chains


def _args_to_params(program: Program, callee_qname: str,
                    call: Dict[str, Any]) -> List[Tuple[str,
                                                        Dict[str, Any]]]:
    callee = program.functions.get(callee_qname)
    if callee is None:
        return []
    params = list(callee["params"])
    if callee.get("cls") and params and params[0] in ("self", "cls"):
        params = params[1:]
    pairs = list(zip(params, call["args"]))
    for name, arg in (call.get("kwargs") or {}).items():
        pairs.append((name, arg))
    return pairs


def check_purity(program: Program) -> List[Finding]:
    """SIM101: impure calls inside dispatch-reachable sim functions."""
    chains = reachable_from_dispatch(program)
    findings: List[Finding] = []
    for qname in sorted(chains):
        func = program.functions[qname]
        module = program.modules.get(program.owner.get(qname, ""))
        if module is None or not module["is_sim"]:
            continue
        root = ("Supervisor.run supervision"
                if "supervision loop" in chains[qname][0]
                else "Simulator.run dispatch")
        for impure in func.get("impure", ()):
            findings.append(Finding(
                path=module["path"], line=impure["line"],
                col=impure["col"], code="SIM101",
                message=(f"{impure['kind']} call `{impure['origin']}()` in "
                         f"{qname}, which is reachable from {root}"),
                chain=tuple(chains[qname][:_MAX_CHAIN])))
    return findings
