"""MEM001: unbounded per-item accumulation in campaign-scope loops.

Campaigns are sized in trials, users, and shards — anything that grows a
list or dict *per item* inside a loop reachable from a campaign entry
point holds the whole population in memory at once, which is exactly
what the streaming sketches and the bounded ring exist to avoid.  The
per-file rules cannot see this: an ``results.append(...)`` is harmless
in a 20-site figure helper and fatal in a 10^6-user sweep.  This rule
walks the call graph from the campaign/experiment entry points and flags
growth whose receiver is *named like* a per-item accumulator.

Heuristics, deliberately narrow to stay quiet:

* only functions reachable from a campaign-scope root
  (``run_campaign``, ``run_parallel_*``, ``worker_main``,
  ``Supervisor.run``, ``run_many``, ``run_shard``, the sector/chaos
  campaign loops, ``run_contention_experiment``);
* only receivers matching the per-item name pattern
  (``records``, ``trials``, ``results``, ``users``, ...);
* receivers constructed from a known class (``local_types`` carries a
  constructor binding — a ``BoundedRing``/``MetricSketch``/``deque``
  is bounded by design) are skipped.

A finding means: stream it through a sketch, bound it with a ring, or
journal it — or suppress with a reason if the loop is provably small.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List

from ..findings import Finding
from .builder import Program
from .taint import _hop

__all__ = ["check_memgrowth", "reachable_from_campaign"]

_MAX_CHAIN = 8

#: qname suffixes that anchor campaign/experiment scope.
CAMPAIGN_ROOTS = (
    ".run_campaign", ".run_parallel_campaign", ".run_parallel_chaos",
    ".run_parallel_sector", ".run_chaos_campaign",
    ".run_differential_campaign", ".run_sector_campaign",
    ".run_sector_trial", ".run_shard", ".run_many", ".worker_main",
    ".run_contention_experiment", ".Supervisor.run",
)

#: Receiver names that smell like per-trial/per-user accumulators.
_PER_ITEM = re.compile(
    r"(config|trial|record|task|user|seed|scenario|client|shard|"
    r"result|finding|failure|sample|event|plt)s(_\w+)?$")


def reachable_from_campaign(program: Program) -> Dict[str, List[str]]:
    """qname -> hop chain, for functions reachable from a campaign root."""
    chains: Dict[str, List[str]] = {}
    queue: List[str] = []
    for qname in sorted(program.functions):
        if qname.endswith(CAMPAIGN_ROOTS):
            chains[qname] = [f"{_hop(program, qname)} is campaign scope"]
            queue.append(qname)
    while queue:
        current = queue.pop(0)
        chain = chains[current]
        if len(chain) >= _MAX_CHAIN:
            continue
        for _, callees in program.callees(current):
            for callee in callees:
                if callee not in chains:
                    chains[callee] = chain + [_hop(program, callee)]
                    queue.append(callee)
    return chains


def _bounded_receiver(func: Dict[str, Any], cls: Dict[str, Any],
                      fact: Dict[str, Any]) -> bool:
    """True when the receiver was built by a constructor call — a class
    instance (sketch, ring, deque wrapper) owns its own bound."""
    recv = fact["recv"]
    if fact.get("self"):
        types = (cls or {}).get("attr_types", {}).get(recv) \
            or (func.get("self_attr_types") or {}).get(recv)
    else:
        types = (func.get("local_types") or {}).get(recv)
    return bool(types)


def check_memgrowth(program: Program) -> List[Finding]:
    """MEM001: per-item container growth in campaign-reachable loops."""
    chains = reachable_from_campaign(program)
    findings: List[Finding] = []
    for qname in sorted(chains):
        func = program.functions[qname]
        module = program.modules.get(program.owner.get(qname, ""))
        if module is None or not module["is_sim"]:
            continue
        cls = program.classes.get(func.get("cls") or "")
        for fact in func.get("loop_growth", ()):
            match = _PER_ITEM.search(fact["recv"])
            if match is None:
                continue
            if _bounded_receiver(func, cls, fact):
                continue
            recv = ("self." + fact["recv"] if fact.get("self")
                    else fact["recv"])
            grow = (f"`{recv}[...] = ...`" if fact["how"] == "[]="
                    else f"`{recv}.{fact['how']}(...)`")
            findings.append(Finding(
                path=module["path"], line=fact["line"], col=fact["col"],
                code="MEM001",
                message=(f"{grow} grows per-{match.group(1)} inside a "
                         f"loop in {qname}, which runs in campaign "
                         f"scope; stream through a sketch, bound with "
                         f"a ring, or journal instead of accumulating"),
                chain=tuple(chains[qname][:_MAX_CHAIN])))
    return findings
