"""The rule catalogue: determinism (DET), units (UNIT), simulator (SIM).

Every rule is a small AST pass over one module.  Rules never import the
code under analysis — everything is derived from the syntax tree plus a
per-file import table, so the linter is safe to run on broken or
side-effectful modules.

Rule scopes
-----------
``sim``
    Only files under ``src/repro/`` (excluding this lint package): the
    code that runs inside the simulated clock, where a wall-clock read or
    a blocking call is a determinism bug rather than a style concern.
``all``
    Every linted file, including tests and benchmarks.

Adding a rule: subclass :class:`Rule`, set ``code``/``summary``/
``rationale``/``example``/``scope``, implement :meth:`check`, and
decorate with :func:`register`.
"""

from __future__ import annotations

import ast
import re
from typing import (Dict, Iterable, Iterator, List, Optional, Tuple,
                    Type, Union)

from .findings import Finding

__all__ = ["Rule", "FileContext", "register", "all_rules", "rules_by_code"]


# ----------------------------------------------------------------------
# per-file context shared by every rule
# ----------------------------------------------------------------------

class FileContext:
    """One parsed module plus the lookup tables rules need.

    ``path`` is the posix-style path the finding will report.  ``is_sim``
    marks files that run under the simulated clock (``src/repro/``,
    excluding the lint package itself).
    """

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        parts = path.replace("\\", "/").split("/")
        self.parts = parts
        self.is_sim = ("repro" in parts
                       and "lint" not in parts
                       and not parts[-1].startswith("test_"))
        # local name -> module it refers to ("t" -> "time" for `import time as t`)
        self.module_aliases: Dict[str, str] = {}
        # local name -> fully qualified origin ("sleep" -> "time.sleep")
        self.from_imports: Dict[str, str] = {}
        self._collect_imports(tree)

    def _collect_imports(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.module_aliases[alias.asname or alias.name] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self.from_imports[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}")

    def resolve(self, func: ast.expr) -> Optional[str]:
        """Dotted origin of a call target, or None if it can't be traced.

        ``time.time`` -> "time.time"; with ``from datetime import datetime``,
        ``datetime.now`` -> "datetime.datetime.now"; a method on an unknown
        object resolves to None.
        """
        chain: List[str] = []
        node = func
        while isinstance(node, ast.Attribute):
            chain.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = node.id
        chain.reverse()
        if base in self.module_aliases:
            return ".".join([self.module_aliases[base]] + chain)
        if base in self.from_imports:
            return ".".join([self.from_imports[base]] + chain)
        if not chain:  # bare name, not imported: a builtin or local
            return base
        return None

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def finding(self, node: ast.AST, code: str, message: str) -> Finding:
        lineno = getattr(node, "lineno", 1)
        return Finding(path=self.path, line=lineno,
                       col=getattr(node, "col_offset", 0),
                       code=code, message=message,
                       line_text=self.line_text(lineno))


# ----------------------------------------------------------------------
# rule base + registry
# ----------------------------------------------------------------------

class Rule:
    """Base class: one diagnostic code, one AST pass."""

    code: str = ""
    summary: str = ""        # one line for --list-rules
    rationale: str = ""      # why this is a reproduction bug
    example: str = ""        # a minimal triggering snippet
    scope: str = "all"       # "all" or "sim"

    def applies(self, ctx: FileContext) -> bool:
        return self.scope == "all" or ctx.is_sim

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError


_REGISTRY: List[Type[Rule]] = []


def register(cls: Type[Rule]) -> Type[Rule]:
    _REGISTRY.append(cls)
    return cls


def all_rules() -> List[Rule]:
    return [cls() for cls in _REGISTRY]


def rules_by_code() -> Dict[str, Rule]:
    return {rule.code: rule for rule in all_rules()}


# ----------------------------------------------------------------------
# shared helpers
# ----------------------------------------------------------------------

def _calls(tree: ast.Module) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


def _iteration_sources(tree: ast.Module) -> Iterator[ast.expr]:
    """Every expression something iterates over: for-loops + comprehensions."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node.iter
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            for gen in node.generators:
                yield gen.iter


def _terminal_name(node: ast.expr) -> Optional[str]:
    """The identifier a value expression bottoms out in, if any."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Call):
        return _terminal_name(node.func)
    if isinstance(node, ast.Subscript):
        return _terminal_name(node.value)
    return None


def _is_negative_literal(node: ast.expr) -> bool:
    return (isinstance(node, ast.UnaryOp)
            and isinstance(node.op, ast.USub)
            and isinstance(node.operand, ast.Constant)
            and isinstance(node.operand.value, (int, float))
            and node.operand.value > 0)


# unit tables, longest suffix first so "_secs" wins over "_s"
# _jitter (arq RLC recovery bound) and _spike (delay-spike duration) are
# seconds by convention throughout the fault layer.
_TIME_SUFFIXES: List[Tuple[str, str]] = [
    ("_seconds", "s"), ("_secs", "s"), ("_sec", "s"), ("_s", "s"),
    ("_jitter", "s"), ("_spike", "s"),
    ("_millis", "ms"), ("_ms", "ms"), ("_us", "us"), ("_ns", "ns"),
]
_SIZE_SUFFIXES: List[Tuple[str, str]] = [
    ("_bytes", "bytes"), ("_byte", "bytes"),
    ("_bits", "bits"), ("_bit", "bits"),
    ("_gbps", "gbps"), ("_mbps", "mbps"), ("_kbps", "kbps"), ("_bps", "bps"),
]


def _suffix_unit(name: Optional[str], table: List[Tuple[str, str]]) -> Optional[str]:
    if not name:
        return None
    for suffix, unit in table:
        if name.endswith(suffix) and len(name) > len(suffix):
            return unit
    return None


class _Units:
    """Result of unit inference: a unit, unitless, or unknown."""
    UNKNOWN = object()


def _infer_unit(node: ast.expr,
                table: List[Tuple[str, str]]) -> object:
    """Unit of an expression under one suffix convention.

    Returns a unit string, None (no unit information), or
    ``_Units.UNKNOWN`` for mixed/opaque expressions.  Multiplication and
    division erase units — that is how conversions are written.
    """
    if isinstance(node, (ast.Name, ast.Attribute, ast.Subscript)):
        return _suffix_unit(_terminal_name(node), table)
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
        left = _infer_unit(node.left, table)
        right = _infer_unit(node.right, table)
        if left is None:
            return right
        if right is None or left == right:
            return left
        return _Units.UNKNOWN
    if isinstance(node, ast.UnaryOp):
        return _infer_unit(node.operand, table)
    return None


_COMPARE_OPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)


def _unit_conflicts(tree: ast.Module,
                    table: List[Tuple[str, str]]) -> Iterator[Tuple[ast.AST, str, str]]:
    """Yield (node, left_unit, right_unit) for add/sub/compare mixing units."""
    for node in ast.walk(tree):
        pairs: List[Tuple[ast.expr, ast.expr]] = []
        if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
            pairs.append((node.left, node.right))
        elif isinstance(node, ast.Compare):
            operands = [node.left] + list(node.comparators)
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if isinstance(op, _COMPARE_OPS):
                    pairs.append((left, right))
        for left, right in pairs:
            lu = _infer_unit(left, table)
            ru = _infer_unit(right, table)
            if (isinstance(lu, str) and isinstance(ru, str) and lu != ru):
                yield node, lu, ru


# ----------------------------------------------------------------------
# DET: determinism
# ----------------------------------------------------------------------

@register
class WallClockRule(Rule):
    code = "DET001"
    summary = "wall-clock read (time.time / datetime.now / time.monotonic)"
    rationale = ("Simulated time is Simulator.now; reading the host clock "
                 "makes event timing — and therefore every PLT and byte "
                 "count derived from it — vary run to run.")
    example = "start = time.time()"
    scope = "all"

    FORBIDDEN = {
        "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
        "time.perf_counter", "time.perf_counter_ns",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
    }

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for call in _calls(ctx.tree):
            origin = ctx.resolve(call.func)
            if origin in self.FORBIDDEN:
                yield ctx.finding(
                    call, self.code,
                    f"wall-clock read `{origin}()`: use the simulated clock "
                    f"(Simulator.now) so runs are reproducible")


@register
class ModuleRandomRule(Rule):
    code = "DET002"
    summary = "module-level random.* call instead of a seeded random.Random"
    rationale = ("The module-level `random` functions share one hidden "
                 "global state: any new caller perturbs every stream, and "
                 "library imports can reseed it.  Named Simulator.rng() "
                 "streams keep HTTP and SPDY runs comparable per seed.")
    example = "jitter = random.uniform(0, 0.1)"
    scope = "all"

    ALLOWED = {"random.Random", "random.SystemRandom"}

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for call in _calls(ctx.tree):
            origin = ctx.resolve(call.func)
            if (origin and origin.startswith("random.")
                    and origin.count(".") == 1
                    and origin not in self.ALLOWED):
                yield ctx.finding(
                    call, self.code,
                    f"global-state `{origin}()`: draw from a passed "
                    f"random.Random (e.g. Simulator.rng(name)) instead")


@register
class BuiltinHashRule(Rule):
    code = "DET003"
    summary = "builtin hash() call"
    rationale = ("hash() on str/bytes is salted per process "
                 "(PYTHONHASHSEED); the PR 2 postmortem traced "
                 "process-dependent wire sizes to exactly this.  Use "
                 "zlib.crc32 or hashlib for stable digests.")
    example = "bucket = hash(domain) % 97"
    scope = "all"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for call in _calls(ctx.tree):
            if isinstance(call.func, ast.Name) and call.func.id == "hash":
                yield ctx.finding(
                    call, self.code,
                    "builtin hash() is salted per process (PYTHONHASHSEED); "
                    "use zlib.crc32 or hashlib for stable values")


@register
class SetIterationRule(Rule):
    code = "DET004"
    summary = "iteration over a set (or .keys() view) in unspecified order"
    rationale = ("Set iteration order depends on insertion history and the "
                 "per-process hash salt; feeding it into scheduling or "
                 "digests silently reorders events.  Wrap in sorted().")
    example = "for conn in set(active): conn.close()"
    scope = "all"

    def _is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            if (isinstance(node.func, ast.Name)
                    and node.func.id in {"set", "frozenset"}):
                return True
            if (isinstance(node.func, ast.Attribute)
                    and node.func.attr == "keys" and not node.args):
                return True
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitAnd, ast.BitOr, ast.BitXor)):
            # set algebra: a & b, a | b
            return self._is_set_expr(node.left) or self._is_set_expr(node.right)
        return False

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for source in _iteration_sources(ctx.tree):
            if self._is_set_expr(source):
                yield ctx.finding(
                    source, self.code,
                    "iterating a set/.keys() view in unspecified order; "
                    "wrap in sorted(...) so event order is reproducible")


@register
class MutableDefaultRule(Rule):
    code = "DET005"
    summary = "mutable default argument holding state across calls"
    rationale = ("A list/dict/set default is created once at def time and "
                 "shared by every call — state leaks between experiments "
                 "that should be independent.")
    example = "def visit(page, seen=[]): ..."
    scope = "all"

    _MUTABLE_CTORS = {"list", "dict", "set", "defaultdict", "Counter",
                      "OrderedDict", "deque"}

    def _is_mutable(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set,
                             ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in self._MUTABLE_CTORS)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None]
            for default in defaults:
                if self._is_mutable(default):
                    yield ctx.finding(
                        default, self.code,
                        f"mutable default argument in {node.name}(): shared "
                        f"across calls; default to None and create inside")


@register
class EntropySourceRule(Rule):
    code = "DET006"
    summary = "ambient entropy source (uuid4, os.urandom, secrets, getpid)"
    rationale = ("Identifiers and nonces must derive from the run seed; OS "
                 "entropy or the PID makes traces differ across replays of "
                 "the same (config, seed) pair.")
    example = "conn_id = uuid.uuid4().hex"
    scope = "sim"

    FORBIDDEN = {
        "uuid.uuid1", "uuid.uuid4", "os.urandom", "os.getpid",
        "secrets.token_bytes", "secrets.token_hex", "secrets.token_urlsafe",
        "secrets.randbelow", "secrets.choice", "secrets.randbits",
    }

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for call in _calls(ctx.tree):
            origin = ctx.resolve(call.func)
            if origin in self.FORBIDDEN:
                yield ctx.finding(
                    call, self.code,
                    f"`{origin}()` draws ambient entropy: derive ids from "
                    f"the run seed so replays are byte-identical")


# ----------------------------------------------------------------------
# UNIT: units discipline
# ----------------------------------------------------------------------

@register
class TimeUnitMixRule(Rule):
    code = "UNIT001"
    summary = "arithmetic/comparison mixing _s/_ms/_us time suffixes"
    rationale = ("The paper's pathology lives in sub-RTT timing; adding a "
                 "milliseconds field to a seconds field is a silent 1000x "
                 "error that still 'runs fine'.")
    example = "deadline = promotion_delay_ms + rtt_s"
    scope = "all"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node, left, right in _unit_conflicts(ctx.tree, _TIME_SUFFIXES):
            yield ctx.finding(
                node, self.code,
                f"mixing time units `{left}` and `{right}` without an "
                f"explicit conversion")


@register
class SizeUnitMixRule(Rule):
    code = "UNIT002"
    summary = "arithmetic/comparison mixing _bytes/_bits/_bps/_mbps suffixes"
    rationale = ("Byte accounting is the other half of reproduction "
                 "fidelity: bytes-vs-bits is a silent 8x, kbps-vs-mbps a "
                 "silent 1000x.")
    example = "budget = window_bytes - sent_bits"
    scope = "all"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node, left, right in _unit_conflicts(ctx.tree, _SIZE_SUFFIXES):
            yield ctx.finding(
                node, self.code,
                f"mixing size/rate units `{left}` and `{right}` without an "
                f"explicit conversion")


_TIMEY = re.compile(
    r"(^|_)(time|now|rto|rtt|srtt|rttvar|plt|delay|deadline|timeout|elapsed)$"
    r"|_s$|_secs?$|_seconds$|_ms$|_us$|_ns$")


def _is_timey(node: ast.expr) -> bool:
    name = _terminal_name(node)
    return bool(name and _TIMEY.search(name))


def _contains_timey_arith(node: ast.expr) -> bool:
    """True if the expression does float arithmetic on a time-flavoured term."""
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.Add, ast.Sub, ast.Mult, ast.Div)):
        return any(_is_timey(sub) for sub in ast.walk(node)
                   if isinstance(sub, (ast.Name, ast.Attribute)))
    return False


@register
class FloatTimeEqualityRule(Rule):
    code = "UNIT003"
    summary = "float == on a computed simulated time"
    rationale = ("Times that went through float arithmetic (RTO smoothing, "
                 "delay sums) are not exactly representable; == makes the "
                 "comparison depend on summation order.  Assignment-exact "
                 "comparisons (sim.now == 5.5 after scheduling 5.5) are "
                 "fine and not flagged.")
    example = "assert t_end == t_start + 3 * rtt_s"
    scope = "all"

    @staticmethod
    def _is_approx(node: ast.expr) -> bool:
        return (isinstance(node, ast.Call)
                and _terminal_name(node.func) == "approx")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if self._is_approx(left) or self._is_approx(right):
                    continue
                if _contains_timey_arith(left) or _contains_timey_arith(right):
                    yield ctx.finding(
                        node, self.code,
                        "exact == on a time computed with float arithmetic; "
                        "use pytest.approx / an epsilon instead")
                    break


# ----------------------------------------------------------------------
# SIM: simulator discipline
# ----------------------------------------------------------------------

@register
class BlockingCallRule(Rule):
    code = "SIM001"
    summary = "blocking call (time.sleep, sockets, subprocess) in sim code"
    rationale = ("Inside the event loop, real-world waiting does nothing to "
                 "the simulated clock — it just wedges the campaign.  Model "
                 "delay by scheduling an event instead.")
    example = "time.sleep(rto)"
    scope = "sim"

    FORBIDDEN_EXACT = {
        "time.sleep", "os.system", "input",
        "socket.socket", "socket.create_connection",
        "urllib.request.urlopen",
    }
    FORBIDDEN_PREFIX = ("subprocess.", "requests.")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for call in _calls(ctx.tree):
            origin = ctx.resolve(call.func)
            if not origin:
                continue
            if (origin in self.FORBIDDEN_EXACT
                    or origin.startswith(self.FORBIDDEN_PREFIX)):
                yield ctx.finding(
                    call, self.code,
                    f"blocking `{origin}()` in simulator code: schedule an "
                    f"event on the simulated clock instead")


@register
class NegativeDelayRule(Rule):
    code = "SIM002"
    summary = "Simulator.schedule called with a negative literal delay"
    rationale = ("A negative delay means scheduling into the past; the "
                 "engine raises at runtime, but a literal can be rejected "
                 "before any event fires.")
    example = "sim.schedule(-0.1, cb)"
    scope = "all"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for call in _calls(ctx.tree):
            if not (isinstance(call.func, ast.Attribute)
                    and call.func.attr in {"schedule", "schedule_at"}):
                continue
            if call.args and _is_negative_literal(call.args[0]):
                yield ctx.finding(
                    call, self.code,
                    f"{call.func.attr}() with a negative literal delay "
                    f"always raises SimulationError")


@register
class HotLoopAttributeRule(Rule):
    code = "PERF001"
    summary = "identical attribute chain read repeatedly inside one loop"
    rationale = ("Every `self.a.b` read is two dict lookups; repeated in a "
                 "per-event or per-packet loop it dominates the profile "
                 "(the PR 7 bench work bought much of its speedup by "
                 "hoisting exactly these).  Bind the chain to a local "
                 "before the loop — or, when the value legitimately "
                 "changes mid-loop, disable with a reason.")
    example = ("while queue:\n"
               "    if queue[0].time > self.sim.now: ...\n"
               "    log(self.sim.now)")
    scope = "sim"

    #: A chain must be read this many times in one loop body to be worth
    #: a local; two reads is already a win in a hot loop.
    MIN_READS = 2
    #: Chains shorter than this (`self.x`) are one lookup — not flagged.
    MIN_DEPTH = 2

    def _chain(self, node: ast.expr) -> Optional[str]:
        """Dotted text of a pure attribute-load chain off a bare name."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            if not isinstance(node.ctx, ast.Load):
                return None
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name) or len(parts) < self.MIN_DEPTH:
            return None
        parts.append(node.id)
        return ".".join(reversed(parts))

    def _loop_reads(
            self, loop: "Union[ast.For, ast.AsyncFor, ast.While]",
    ) -> Iterator[Tuple[str, ast.Attribute]]:
        """(chain, node) for every qualifying read in the loop body.

        Each chain is yielded together with its qualifying prefixes, so
        ``self.link.dst.receive(x)`` + ``self.link.dst.flush()`` counts
        as two reads of ``self.link.dst``.  Nested function bodies are
        skipped — their loops are visited on their own.
        """
        stack = list(loop.body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                continue
            if isinstance(node, ast.Attribute):
                chain = self._chain(node)
                if chain is not None:
                    parts = chain.split(".")
                    for depth in range(self.MIN_DEPTH, len(parts)):
                        yield ".".join(parts[:depth + 1]), node
                    continue  # prefixes covered above; don't re-walk
            stack.extend(ast.iter_child_nodes(node))

    def _stored_names(self, loop: ast.AST) -> set:
        """Attribute names and bare names assigned anywhere in the loop."""
        stored = set()
        for node in ast.walk(loop):
            if isinstance(node, (ast.Attribute, ast.Name)) and isinstance(
                    node.ctx, (ast.Store, ast.Del)):
                stored.add(node.attr if isinstance(node, ast.Attribute)
                           else node.id)
        return stored

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for loop in ast.walk(ctx.tree):
            if not isinstance(loop, (ast.For, ast.AsyncFor, ast.While)):
                continue
            reads: Dict[str, List[ast.Attribute]] = {}
            for chain, node in self._loop_reads(loop):
                reads.setdefault(chain, []).append(node)
            if not reads:
                continue
            stored = self._stored_names(loop)
            flagged = [
                chain for chain, nodes in reads.items()
                if len(nodes) >= self.MIN_READS
                # Any link of the chain being assigned in the loop means
                # the read may legitimately see a new value each pass.
                and not any(part in stored for part in chain.split("."))
            ]
            for chain in sorted(flagged):
                # Report only the longest flagged chain: hoisting
                # `self.sim.now` already covers its `self.sim` prefix.
                if any(other.startswith(chain + ".") for other in flagged):
                    continue
                nodes = reads[chain]
                first = min(nodes, key=lambda n: (n.lineno, n.col_offset))
                yield ctx.finding(
                    first, self.code,
                    f"`{chain}` read {len(nodes)} times in this loop: bind "
                    f"it to a local before the loop (two dict lookups per "
                    f"read add up in per-event code)")


@register
class CwndMutationRule(Rule):
    code = "SIM003"
    summary = "cwnd/ssthresh mutated outside tcp/ modules"
    rationale = ("Congestion state belongs to the congestion controller; "
                 "the PR 2 sanitizer exists because out-of-band mutation "
                 "corrupted Figure 15.  Files with 'tcp' in their path "
                 "(the stack and its dedicated tests) are exempt.")
    example = "conn.cwnd = 100  # in web/spdy.py"
    scope = "all"

    _ATTRS = {"cwnd", "ssthresh"}

    def applies(self, ctx: FileContext) -> bool:
        return not any("tcp" in part for part in ctx.parts)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                if (isinstance(target, ast.Attribute)
                        and target.attr in self._ATTRS):
                    yield ctx.finding(
                        node, self.code,
                        f"direct mutation of `.{target.attr}` outside tcp/: "
                        f"go through the congestion controller API")
