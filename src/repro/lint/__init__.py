"""repro.lint — AST-based determinism & units static analysis.

The runtime sanitizer (``repro.sanity``) catches invariant violations
*while* a simulation runs; this package catches the bug classes that are
visible in the source before any event fires: wall-clock reads, hidden
global randomness, salted ``hash()``, unordered set iteration, mixed
time/size units, and simulator-discipline violations.

Usage::

    repro lint src tests benchmarks
    python -m repro.lint --format json
    # inline: sim.schedule(-0.1, cb)  # repro-lint: disable=SIM002

See DESIGN.md ("repro lint") for the rule catalogue.
"""

from .baseline import Baseline, BaselineError, DEFAULT_BASELINE_NAME
from .engine import (LintReport, iter_python_files, lint_file, lint_paths,
                     lint_source)
from .findings import Finding
from .rules import FileContext, Rule, all_rules, register, rules_by_code

__all__ = [
    "Baseline", "BaselineError", "DEFAULT_BASELINE_NAME",
    "Finding", "FileContext", "Rule", "register",
    "all_rules", "rules_by_code",
    "LintReport", "lint_source", "lint_file", "lint_paths",
    "iter_python_files",
]
