"""Lint driver: discover files, parse, run rules, apply suppressions.

Inline suppression
------------------
A finding is suppressed by a trailing comment on the flagged line::

    sim.schedule(-0.1, cb)  # repro-lint: disable=SIM002  -- error-path test

``disable=all`` suppresses every rule on that line.  Suppressions are
deliberate and visible in the diff; the baseline (see ``baseline.py``)
is for grandfathered findings that predate a rule.
"""

from __future__ import annotations

import ast
import os
import re
import time
from dataclasses import dataclass, field
from typing import (Dict, Iterable, Iterator, List, Optional, Sequence, Set,
                    Tuple)

from .baseline import Baseline
from .findings import Finding
from .rules import FileContext, Rule, all_rules, rules_by_code

__all__ = ["LintReport", "lint_source", "lint_file", "lint_paths",
           "iter_python_files", "SUPPRESS_ALL"]

SUPPRESS_ALL = "all"

# dirs whose contents are data for the lint tests, not code to lint
_EXCLUDED_DIRS = {"lint_fixtures", "__pycache__", ".git", ".venv", "venv",
                  "node_modules", ".mypy_cache", ".pytest_cache"}

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+|all)")


def _suppressions(source: str) -> Dict[int, Set[str]]:
    """Map 1-based line number -> set of suppressed codes ('all' wildcard)."""
    table: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match:
            spec = match.group(1)
            codes = {c.strip().upper() for c in spec.split(",") if c.strip()}
            table[lineno] = codes
    return table


@dataclass
class LintReport:
    """Outcome of linting a set of paths."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: int = 0      # inline suppression comments seen
    baselined: int = 0       # findings matched against the baseline
    files_checked: int = 0
    errors: List[str] = field(default_factory=list)  # unreadable paths etc.
    stale_baseline: List[tuple] = field(default_factory=list)
    deep: bool = False              # whole-program pass ran
    deep_modules: int = 0           # modules in the assembled program
    deep_cache_hits: int = 0        # IR cache hits (warm entries)
    deep_cache_misses: int = 0      # IR cache misses (re-extracted)
    deep_seconds: float = 0.0       # wall time of the deep pass

    @property
    def clean(self) -> bool:
        return not self.findings and not self.errors


def _lint_source_counted(
        source: str, path: str,
        rules: Optional[Sequence[Rule]]) -> Tuple[List[Finding], int]:
    """Lint one source string -> (findings, n_suppressed_findings)."""
    if rules is None:
        rules = all_rules()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        offending = (exc.text or "").strip()
        message = f"syntax error: {exc.msg}"
        if offending:
            message += f" — `{offending}`"
        return [Finding(path=path, line=exc.lineno or 1,
                        col=(exc.offset or 1) - 1, code="PARSE",
                        message=message, line_text=offending)], 0
    ctx = FileContext(path, source, tree)
    suppressed_lines = _suppressions(source)
    findings: List[Finding] = []
    suppressed = 0
    for rule in rules:
        if not rule.applies(ctx):
            continue
        for finding in rule.check(ctx):
            codes = suppressed_lines.get(finding.line, set())
            if SUPPRESS_ALL.upper() in codes or finding.code in codes:
                suppressed += 1
                continue
            findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings, suppressed


def lint_source(source: str, path: str = "<string>",
                rules: Optional[Sequence[Rule]] = None) -> List[Finding]:
    """Lint one source string.  Inline suppressions apply; baselines don't.

    A syntax error is reported as a single ``PARSE`` finding — a file the
    linter cannot read is a finding, not a crash.
    """
    findings, _ = _lint_source_counted(source, path, rules)
    return findings


def lint_file(path: str,
              rules: Optional[Sequence[Rule]] = None) -> List[Finding]:
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return lint_source(source, path=path.replace(os.sep, "/"), rules=rules)


def iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    """Expand files/dirs into a sorted, de-duplicated list of .py files."""
    seen: Set[str] = set()
    for path in paths:
        if os.path.isfile(path):
            if path not in seen:
                seen.add(path)
                yield path
        elif os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(d for d in dirs if d not in _EXCLUDED_DIRS
                                 and not d.startswith("."))
                for name in sorted(files):
                    if name.endswith(".py"):
                        full = os.path.join(root, name)
                        if full not in seen:
                            seen.add(full)
                            yield full
        else:
            raise FileNotFoundError(path)


def _lint_file_task(
    task: Tuple[str, Optional[Tuple[str, ...]]],
) -> Tuple[str, List[Finding], int, Optional[str]]:
    """Lint one file — top-level so multiprocessing can pickle it.

    Returns ``(filename, findings, n_suppressed, error_or_None)``.  The
    worker re-reads the file itself so only the small task tuple crosses
    the pipe; rule *codes* travel instead of rule instances for the same
    reason.
    """
    filename, codes = task
    try:
        with open(filename, "r", encoding="utf-8") as handle:
            source = handle.read()
    except OSError as exc:
        return filename, [], 0, f"cannot read {filename}: {exc}"
    rules: Optional[List[Rule]] = None
    if codes is not None:
        catalogue = rules_by_code()
        rules = [catalogue[c] for c in codes if c in catalogue]
    path = filename.replace(os.sep, "/")
    findings, suppressed = _lint_source_counted(source, path, rules)
    return filename, findings, suppressed, None


def lint_paths(paths: Sequence[str],
               rules: Optional[Sequence[Rule]] = None,
               baseline: Optional[Baseline] = None,
               *,
               deep: bool = False,
               jobs: int = 1,
               cache_dir: Optional[str] = None,
               deep_codes: Optional[Sequence[str]] = None) -> LintReport:
    """Lint every python file under ``paths`` and fold in the baseline.

    ``deep=True`` additionally runs the whole-program analyses (call-graph
    taint, sim-purity reachability, worker races, interprocedural unit
    flow) and merges their findings into the same report; ``cache_dir``
    names the on-disk IR cache for that pass (None disables caching).

    ``jobs > 1`` evaluates the per-file rules in a process pool.  Results
    are reassembled in file order and every finding — per-file and deep —
    goes through one global ``(path, line, col, code)`` sort *before*
    baseline matching, so the output is byte-identical to a serial run
    regardless of worker scheduling.
    """
    report = LintReport(deep=deep)
    baseline = baseline if baseline is not None else Baseline.empty()
    try:
        files = list(iter_python_files(paths))
    except FileNotFoundError as exc:
        report.errors.append(f"no such file or directory: {exc.args[0]}")
        return report

    codes = tuple(rule.code for rule in rules) if rules is not None else None
    tasks = [(filename, codes) for filename in files]
    if jobs > 1 and len(tasks) > 1:
        import multiprocessing
        with multiprocessing.Pool(min(jobs, len(tasks))) as pool:
            results = pool.map(_lint_file_task, tasks)
    else:
        results = [_lint_file_task(task) for task in tasks]

    raw: List[Finding] = []
    for _filename, findings, suppressed, error in results:
        if error is not None:
            report.errors.append(error)
            continue
        report.files_checked += 1
        report.suppressed += suppressed
        raw.extend(findings)

    if deep:
        started = time.perf_counter()  # repro-lint: disable=DET001 -- timing the lint pass itself
        # imported here: graph.driver imports back into this module for
        # the suppression machinery, so a top-level import would cycle
        from .graph import GraphCache, analyze_sources
        sources: List[Tuple[str, str]] = []
        for filename in files:
            try:
                with open(filename, "r", encoding="utf-8") as handle:
                    sources.append((filename.replace(os.sep, "/"),
                                    handle.read()))
            except OSError:
                continue  # already reported by the per-file pass
        graph_report = analyze_sources(
            sources, cache=GraphCache(cache_dir), codes=deep_codes)
        report.suppressed += graph_report.suppressed
        report.deep_modules = graph_report.modules
        report.deep_cache_hits = graph_report.cache_hits
        report.deep_cache_misses = graph_report.cache_misses
        raw.extend(graph_report.findings)
        report.deep_seconds = time.perf_counter() - started  # repro-lint: disable=DET001 -- timing the lint pass itself

    raw.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    matcher = baseline.matcher()
    for finding in raw:
        if matcher.consume(finding):
            report.baselined += 1
        else:
            report.findings.append(finding)
    report.stale_baseline = matcher.unmatched()
    return report
