"""Grandfathered-findings baseline.

The baseline is a checked-in JSON file listing findings that predate a
rule and are accepted for now.  Entries match on ``(path, code,
line_text)`` — the stripped text of the flagged line — so edits elsewhere
in the file do not invalidate them, while any change to the flagged line
itself (including fixing it) retires the entry.

The ``note`` field is the justification channel (JSON has no comments):
explain *why* each family of entries is grandfathered when you write one.
An exhausted entry (the finding it matched is gone) is reported by
``repro lint`` so stale baselines shrink instead of accreting.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .findings import Finding

__all__ = ["Baseline", "BaselineError", "DEFAULT_BASELINE_NAME"]

DEFAULT_BASELINE_NAME = ".repro-lint-baseline.json"

_Key = Tuple[str, str, str]


class BaselineError(ValueError):
    """Raised for a malformed baseline file."""


@dataclass
class Baseline:
    """A multiset of accepted findings plus a human justification note."""

    entries: Counter = field(default_factory=Counter)
    note: str = ""

    @classmethod
    def empty(cls) -> "Baseline":
        return cls()

    @classmethod
    def from_findings(cls, findings: List[Finding], note: str = "") -> "Baseline":
        entries: Counter = Counter(f.baseline_key() for f in findings)
        return cls(entries=entries, note=note)

    @classmethod
    def load(cls, path: str) -> "Baseline":
        with open(path, "r", encoding="utf-8") as handle:
            try:
                payload = json.load(handle)
            except json.JSONDecodeError as exc:
                raise BaselineError(f"{path}: not valid JSON ({exc})")
        if not isinstance(payload, dict) or "entries" not in payload:
            raise BaselineError(f"{path}: expected an object with 'entries'")
        entries: Counter = Counter()
        for raw in payload["entries"]:
            try:
                key = (raw["path"], raw["code"], raw["line_text"])
            except (TypeError, KeyError):
                raise BaselineError(
                    f"{path}: entries need path/code/line_text: {raw!r}")
            entries[key] += int(raw.get("count", 1))
        return cls(entries=entries, note=str(payload.get("note", "")))

    def save(self, path: str) -> None:
        payload = {
            "version": 1,
            "note": self.note or ("grandfathered findings; fix and remove "
                                  "entries rather than adding new ones"),
            "entries": [
                {"path": p, "code": c, "line_text": t, "count": n}
                for (p, c, t), n in sorted(self.entries.items())
            ],
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=False)
            handle.write("\n")

    def matcher(self) -> "BaselineMatcher":
        return BaselineMatcher(dict(self.entries))

    def __len__(self) -> int:
        return sum(self.entries.values())


class BaselineMatcher:
    """Consumes baseline entries as findings match them (multiset semantics)."""

    def __init__(self, budget: Dict[_Key, int]) -> None:
        self._budget = dict(budget)

    def consume(self, finding: Finding) -> bool:
        key = finding.baseline_key()
        remaining = self._budget.get(key, 0)
        if remaining > 0:
            self._budget[key] = remaining - 1
            return True
        return False

    def unmatched(self) -> List[_Key]:
        """Entries never consumed — stale baseline lines to delete."""
        return sorted(k for k, n in self._budget.items() if n > 0)
