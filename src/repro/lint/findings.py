"""Finding: one diagnostic emitted by a lint rule.

A finding is identified for baseline purposes by ``(path, code,
line_text)`` — the *content* of the flagged line rather than its number —
so unrelated edits above a grandfathered finding do not invalidate the
baseline entry.

Whole-program (``--deep``) findings additionally carry ``chain``: the
call/ownership path that connects the flagged line to the property it
violates (entropy source to simulator sink, supervisor and worker both
reaching one mutable global, ...).  The chain is rendered as indented
continuation lines and included in the JSON payload, but deliberately
excluded from the baseline key — re-routing a path does not launder a
grandfathered leak into a new finding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple, Union

__all__ = ["Finding"]


@dataclass(frozen=True)
class Finding:
    """One diagnostic: where it is, which rule fired, and why."""

    path: str          # posix-style path as given on the command line
    line: int          # 1-based line number
    col: int           # 0-based column offset
    code: str          # rule code, e.g. "DET001"
    message: str       # human-readable explanation
    line_text: str = ""  # stripped source line (baseline matching key)
    chain: Tuple[str, ...] = ()  # call/ownership path for --deep findings

    def baseline_key(self) -> Tuple[str, str, str]:
        """Key used to match this finding against baseline entries."""
        return (self.path, self.code, self.line_text)

    def render(self) -> str:
        text = (f"{self.path}:{self.line}:{self.col + 1}: "
                f"{self.code} {self.message}")
        for hop in self.chain:
            text += f"\n    {hop}"
        return text

    def to_json(self) -> Dict[str, Union[str, int, list]]:
        payload: Dict[str, Union[str, int, list]] = {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }
        if self.chain:
            payload["chain"] = list(self.chain)
        return payload
