"""Finding: one diagnostic emitted by a lint rule.

A finding is identified for baseline purposes by ``(path, code,
line_text)`` — the *content* of the flagged line rather than its number —
so unrelated edits above a grandfathered finding do not invalidate the
baseline entry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

__all__ = ["Finding"]


@dataclass(frozen=True)
class Finding:
    """One diagnostic: where it is, which rule fired, and why."""

    path: str          # posix-style path as given on the command line
    line: int          # 1-based line number
    col: int           # 0-based column offset
    code: str          # rule code, e.g. "DET001"
    message: str       # human-readable explanation
    line_text: str = ""  # stripped source line (baseline matching key)

    def baseline_key(self) -> Tuple[str, str, str]:
        """Key used to match this finding against baseline entries."""
        return (self.path, self.code, self.line_text)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.code} {self.message}"

    def to_json(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }
