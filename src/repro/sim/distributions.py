"""Random-variate helpers used across the network models.

Cellular RTT jitter, origin-server latency and loss processes all need
simple distributions with sane clamping.  Keeping them here (rather than
sprinkling ``random.lognormvariate`` calls through the link code) makes
every model's randomness explicit and testable.
"""

from __future__ import annotations

import math
import random
from typing import Sequence

__all__ = [
    "bounded_lognormal",
    "bounded_normal",
    "exponential",
    "weighted_choice",
    "zipf_weights",
]


def bounded_normal(rng: random.Random, mean: float, std: float,
                   lo: float, hi: float) -> float:
    """Normal variate clamped to ``[lo, hi]``."""
    value = rng.gauss(mean, std)
    return min(hi, max(lo, value))


def bounded_lognormal(rng: random.Random, median: float, sigma: float,
                      lo: float, hi: float) -> float:
    """Lognormal variate with the given *median*, clamped to ``[lo, hi]``.

    Parameterising by the median (rather than the underlying mu) keeps the
    call sites readable: ``bounded_lognormal(rng, median=0.1, sigma=0.4, ...)``
    produces values around 100 ms with a heavy right tail — the classic
    shape of cellular RTT samples.
    """
    if median <= 0:
        raise ValueError("median must be positive")
    value = rng.lognormvariate(math.log(median), sigma)
    return min(hi, max(lo, value))


def exponential(rng: random.Random, mean: float) -> float:
    """Exponential variate with the given mean."""
    if mean <= 0:
        raise ValueError("mean must be positive")
    return rng.expovariate(1.0 / mean)


def zipf_weights(n: int, alpha: float = 1.0) -> Sequence[float]:
    """Zipf popularity weights for ``n`` ranks, normalised to sum to 1.

    Used to spread a page's objects across its domains the way real sites
    do: a couple of dominant domains plus a long tail of third parties.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    raw = [1.0 / (rank ** alpha) for rank in range(1, n + 1)]
    total = sum(raw)
    return [w / total for w in raw]


def weighted_choice(rng: random.Random, items: Sequence, weights: Sequence[float]):
    """Pick one item according to ``weights`` (need not be normalised)."""
    if len(items) != len(weights):
        raise ValueError("items and weights must have the same length")
    total = sum(weights)
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    target = rng.random() * total
    acc = 0.0
    for item, weight in zip(items, weights):
        acc += weight
        if target < acc:
            return item
    return items[-1]
