"""Deterministic discrete-event simulation engine.

This is the clock every other subsystem runs on.  The engine keeps a
priority queue of scheduled events ordered by (time, sequence-number), so
two events scheduled for the same instant always fire in the order they
were scheduled — a property the rest of the stack (TCP timers, radio
promotion callbacks, browser parse steps) relies on for reproducibility.

The paper's field study ran for four months against a production cellular
network; our equivalent of "time" is this simulated clock, and our
equivalent of day-to-day variability is the seeded random streams exposed
by :meth:`Simulator.rng`.

Performance notes (the engine is the hot path of every campaign):

* Heap entries are ``(time, seq, event)`` tuples, not :class:`Event`
  objects, so every heap sift compares with C tuple comparison instead
  of a Python-level ``__lt__`` call.  ``(time, seq)`` is unique per
  event, so the pop order — and therefore every run — is unchanged.
* :meth:`run` dispatches through a branch-free inner loop when no
  sanitizer is attached and no event budget is set: the checks-off
  configuration every headline measurement uses pays zero per-event
  instrumentation cost, and fires events in exactly the same order as
  the instrumented loop (a guard test in ``tests/test_bench.py`` holds
  this).
* Cancellation is lazy, but the engine keeps an exact count of
  cancelled entries still queued: :meth:`pending` is O(1), and when
  cancelled entries outnumber live ones the heap is compacted in place
  (O(n) amortised over the cancels that caused it).  Long timer-heavy
  runs — an RTO timer is re-armed on every ACK — no longer balloon the
  heap or drag every pop through a trail of tombstones.
"""

from __future__ import annotations

import heapq
import math
import random
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = ["Event", "Simulator", "SimulationError"]

#: Compact when more than this many cancelled entries are queued *and*
#: they outnumber the live ones; small queues are never worth the pass.
_COMPACT_MIN_CANCELLED = 64


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation engine (e.g. scheduling in the past)."""


class Event:
    """A single scheduled callback.

    Events are returned by :meth:`Simulator.schedule` and may be cancelled
    with :meth:`cancel`.  Cancellation is lazy: the heap entry stays in the
    queue and is skipped when popped (or removed wholesale when the
    simulator compacts its heap).
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_sim")

    def __init__(self, time: float, seq: int, callback: Callable[..., Any],
                 args: tuple, sim: Optional["Simulator"] = None):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        # Owning simulator while the event sits in its queue; cleared on
        # pop so a late cancel() (e.g. the browser cancelling background
        # work that already fired) cannot skew the cancelled-entry count.
        self._sim = sim

    def cancel(self) -> None:
        """Prevent this event from firing.  Safe to call more than once."""
        if not self.cancelled:
            self.cancelled = True
            sim = self._sim
            if sim is not None:
                sim._note_cancel()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"<Event t={self.time:.6f} #{self.seq} {name} {state}>"


class Simulator:
    """Deterministic event loop with named, seed-derived random streams.

    Parameters
    ----------
    seed:
        Master seed.  Every named RNG stream (see :meth:`rng`) derives its
        own :class:`random.Random` from ``(seed, name)``, so adding a new
        consumer of randomness never perturbs existing streams — crucial
        when comparing an HTTP run against a SPDY run with the same seed.
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.now: float = 0.0
        # Heap of (time, seq, Event): tuples compare in C, and (time, seq)
        # is unique, so the Event itself is never compared.
        self._queue: List[Tuple[float, int, Event]] = []
        self._seq = 0
        self._cancelled = 0      # cancelled entries still in the heap
        self._rngs: Dict[str, random.Random] = {}
        self._running = False
        self.events_processed = 0
        self.sanitizer: Optional[Any] = None  # repro.sanity.Sanitizer when checks are on

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        # `not (delay >= 0)` also rejects NaN, whose comparisons are all
        # False and would otherwise corrupt the heap order silently.
        if not (delay >= 0):
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        if delay == math.inf:
            raise SimulationError("cannot schedule at an infinite delay")
        time = self.now + delay
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, callback, args, self)
        heapq.heappush(self._queue, (time, seq, event))
        return event

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run at absolute simulated ``time``."""
        if not (time >= self.now):
            raise SimulationError(
                f"cannot schedule at t={time} which is before now={self.now}"
            )
        if time == math.inf:
            raise SimulationError("cannot schedule at an infinite time")
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, callback, args, self)
        heapq.heappush(self._queue, (time, seq, event))
        return event

    def call_soon(self, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule a callback at the current instant (after pending same-time events)."""
        return self.schedule(0.0, callback, *args)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run events until the queue empties, ``until`` passes, or ``max_events`` fire.

        Returns the simulated time at which the run stopped.  When stopping
        because ``until`` was reached, the clock is advanced to ``until``.

        The dispatch path is chosen once per call: with no sanitizer
        attached and no event budget, a branch-free inner loop fires the
        same events in the same order with no per-event instrumentation
        cost.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        queue = self._queue   # identity is stable; compaction mutates in place
        pop = heapq.heappop
        fired = 0
        try:
            if self.sanitizer is None and max_events is None:
                if until is None:
                    # Fastest path: drain the queue.
                    while queue:
                        entry = pop(queue)
                        event = entry[2]
                        if event.cancelled:
                            self._cancelled -= 1
                            continue
                        event._sim = None
                        self.now = entry[0]
                        event.callback(*event.args)
                        fired += 1
                else:
                    while queue:
                        entry = queue[0]
                        event = entry[2]
                        if event.cancelled:
                            pop(queue)
                            self._cancelled -= 1
                            continue
                        if entry[0] > until:
                            break
                        pop(queue)
                        event._sim = None
                        self.now = entry[0]
                        event.callback(*event.args)
                        fired += 1
            else:
                # Instrumented / budgeted path: identical event order.
                while queue:
                    entry = queue[0]
                    event = entry[2]
                    if event.cancelled:
                        pop(queue)
                        self._cancelled -= 1
                        continue
                    if until is not None and entry[0] > until:
                        break
                    pop(queue)
                    event._sim = None
                    if self.sanitizer is not None:
                        # detail stays an Event; it is only rendered if a
                        # violation report actually formats the ring.
                        self.sanitizer.emit("sim.event", self, detail=event,
                                            event=event)
                    self.now = entry[0]
                    event.callback(*event.args)
                    fired += 1
                    if max_events is not None and fired >= max_events:
                        break
        finally:
            self.events_processed += fired
            self._running = False
        if until is not None and self.now < until:
            nxt = self.peek_time()
            if nxt is None or nxt > until:
                self.now = until
        return self.now

    def step(self) -> bool:
        """Run exactly one pending event.  Returns False when the queue is empty."""
        queue = self._queue
        while queue:
            time, _seq, event = heapq.heappop(queue)
            if event.cancelled:
                self._cancelled -= 1
                continue
            event._sim = None
            if self.sanitizer is not None:
                self.sanitizer.emit("sim.event", self, detail=event,
                                    event=event)
            self.now = time
            event.callback(*event.args)
            self.events_processed += 1
            return True
        return False

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued.  O(1)."""
        return len(self._queue) - self._cancelled

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or None if the queue is empty.

        Cancelled events accumulated at the top of the heap are discarded
        on the way, so the amortised cost is O(log n) rather than the full
        sort this used to do.
        """
        queue = self._queue
        while queue and queue[0][2].cancelled:
            heapq.heappop(queue)
            self._cancelled -= 1
        return queue[0][0] if queue else None

    # ------------------------------------------------------------------
    # cancellation bookkeeping
    # ------------------------------------------------------------------
    def _note_cancel(self) -> None:
        """Called by :meth:`Event.cancel` while the event is still queued."""
        self._cancelled = cancelled = self._cancelled + 1
        if cancelled > _COMPACT_MIN_CANCELLED and \
                cancelled * 2 > len(self._queue):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify, preserving list identity.

        In-place (slice assignment) so a loop in :meth:`run` holding a
        local reference to the queue keeps seeing the live heap.  Pop
        order is fully determined by the (time, seq) total order, so
        rebuilding the heap cannot reorder any surviving event.
        """
        queue = self._queue
        queue[:] = [entry for entry in queue if not entry[2].cancelled]
        heapq.heapify(queue)
        self._cancelled = 0

    # ------------------------------------------------------------------
    # randomness
    # ------------------------------------------------------------------
    def rng(self, name: str) -> random.Random:
        """Return the named random stream, creating it on first use.

        Streams are independent and deterministic in ``(seed, name)``.
        """
        stream = self._rngs.get(name)
        if stream is None:
            stream = random.Random(f"{self.seed}/{name}")
            self._rngs[name] = stream
        return stream
