"""Deterministic discrete-event simulation engine.

This is the clock every other subsystem runs on.  The engine keeps a
priority queue of scheduled events ordered by (time, sequence-number), so
two events scheduled for the same instant always fire in the order they
were scheduled — a property the rest of the stack (TCP timers, radio
promotion callbacks, browser parse steps) relies on for reproducibility.

The paper's field study ran for four months against a production cellular
network; our equivalent of "time" is this simulated clock, and our
equivalent of day-to-day variability is the seeded random streams exposed
by :meth:`Simulator.rng`.
"""

from __future__ import annotations

import heapq
import math
import random
from typing import Any, Callable, Dict, List, Optional

__all__ = ["Event", "Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation engine (e.g. scheduling in the past)."""


class Event:
    """A single scheduled callback.

    Events are returned by :meth:`Simulator.schedule` and may be cancelled
    with :meth:`cancel`.  Cancellation is lazy: the heap entry stays in the
    queue and is skipped when popped.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent this event from firing.  Safe to call more than once."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"<Event t={self.time:.6f} #{self.seq} {name} {state}>"


class Simulator:
    """Deterministic event loop with named, seed-derived random streams.

    Parameters
    ----------
    seed:
        Master seed.  Every named RNG stream (see :meth:`rng`) derives its
        own :class:`random.Random` from ``(seed, name)``, so adding a new
        consumer of randomness never perturbs existing streams — crucial
        when comparing an HTTP run against a SPDY run with the same seed.
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.now: float = 0.0
        self._queue: List[Event] = []
        self._seq = 0
        self._rngs: Dict[str, random.Random] = {}
        self._running = False
        self.events_processed = 0
        self.sanitizer: Optional[Any] = None  # repro.sanity.Sanitizer when checks are on

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        # `not (delay >= 0)` also rejects NaN, whose comparisons are all
        # False and would otherwise corrupt the heap order silently.
        if not (delay >= 0):
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        if math.isinf(delay):
            raise SimulationError("cannot schedule at an infinite delay")
        return self.schedule_at(self.now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run at absolute simulated ``time``."""
        if not (time >= self.now):
            raise SimulationError(
                f"cannot schedule at t={time} which is before now={self.now}"
            )
        if math.isinf(time):
            raise SimulationError("cannot schedule at an infinite time")
        event = Event(time, self._seq, callback, args)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    def call_soon(self, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule a callback at the current instant (after pending same-time events)."""
        return self.schedule(0.0, callback, *args)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run events until the queue empties, ``until`` passes, or ``max_events`` fire.

        Returns the simulated time at which the run stopped.  When stopping
        because ``until`` was reached, the clock is advanced to ``until``.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        fired = 0
        try:
            while self._queue:
                event = self._queue[0]
                if event.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._queue)
                if self.sanitizer is not None:
                    self.sanitizer.emit("sim.event", self, detail=repr(event),
                                        event=event)
                self.now = event.time
                event.callback(*event.args)
                self.events_processed += 1
                fired += 1
                if max_events is not None and fired >= max_events:
                    break
        finally:
            self._running = False
        if until is not None and self.now < until:
            nxt = self.peek_time()
            if nxt is None or nxt > until:
                self.now = until
        return self.now

    def step(self) -> bool:
        """Run exactly one pending event.  Returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            if self.sanitizer is not None:
                self.sanitizer.emit("sim.event", self, detail=repr(event),
                                    event=event)
            self.now = event.time
            event.callback(*event.args)
            self.events_processed += 1
            return True
        return False

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for e in self._queue if not e.cancelled)

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or None if the queue is empty.

        Cancelled events accumulated at the top of the heap are discarded
        on the way, so the amortised cost is O(log n) rather than the full
        sort this used to do.
        """
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    # ------------------------------------------------------------------
    # randomness
    # ------------------------------------------------------------------
    def rng(self, name: str) -> random.Random:
        """Return the named random stream, creating it on first use.

        Streams are independent and deterministic in ``(seed, name)``.
        """
        stream = self._rngs.get(name)
        if stream is None:
            stream = random.Random(f"{self.seed}/{name}")
            self._rngs[name] = stream
        return stream
