"""Restartable one-shot timers on top of the event engine.

TCP alone needs three independent timers per connection (retransmission,
delayed-ACK, keepalive) and the RRC state machines need inactivity timers
that are restarted on every packet.  :class:`Timer` wraps the raw
``Event`` API with the start/restart/stop semantics those state machines
expect.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from .engine import Event, Simulator

__all__ = ["Timer"]


class Timer:
    """A one-shot timer that can be (re)started and stopped.

    The callback fires once per start.  Restarting an armed timer cancels
    the previous deadline, exactly like resetting a kernel timer.
    """

    def __init__(self, sim: Simulator, callback: Callable[..., Any], name: str = ""):
        self._sim = sim
        self._callback = callback
        self.name = name
        self._event: Optional[Event] = None
        self.expiry: Optional[float] = None

    @property
    def armed(self) -> bool:
        """True while the timer is counting down."""
        return self._event is not None and not self._event.cancelled

    def start(self, delay: float, *args: Any) -> None:
        """Arm (or re-arm) the timer to fire ``delay`` seconds from now."""
        self.stop()
        self.expiry = self._sim.now + delay
        self._event = self._sim.schedule(delay, self._fire, args)

    def restart_at(self, time: float, *args: Any) -> None:
        """Arm (or re-arm) the timer to fire at absolute ``time``."""
        self.stop()
        self.expiry = time
        self._event = self._sim.schedule_at(time, self._fire, args)

    def stop(self) -> None:
        """Disarm the timer if armed."""
        if self._event is not None:
            self._event.cancel()
            self._event = None
        self.expiry = None

    def remaining(self) -> Optional[float]:
        """Seconds until expiry, or None when disarmed."""
        if not self.armed or self.expiry is None:
            return None
        return max(0.0, self.expiry - self._sim.now)

    def _fire(self, args: tuple) -> None:
        self._event = None
        self.expiry = None
        self._callback(*args)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.armed:
            return f"<Timer {self.name!r} fires@{self.expiry:.6f}>"
        return f"<Timer {self.name!r} disarmed>"
