"""Deterministic discrete-event simulation kernel.

Everything in the reproduction — links, radios, TCP, browsers, proxies —
is driven by one :class:`Simulator` instance per experiment run.
"""

from .engine import Event, SimulationError, Simulator
from .timers import Timer
from . import distributions

__all__ = ["Event", "SimulationError", "Simulator", "Timer", "distributions"]
