"""Command-line interface: run studies and regenerate paper figures.

Examples
--------
Run one experiment and print its summary::

    python -m repro run --protocol spdy --network 3g --sites 5,9,12

Compare HTTP and SPDY (the paper's headline comparison)::

    python -m repro study --network wifi --runs 2

Regenerate a figure or table::

    python -m repro figure fig03 --runs 2
    python -m repro figure table2

Check one scenario under a metamorphic relation pair::

    python -m repro diff cc-bytes --faults 'arq@2:0.2:0.8' --seed 7
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .bench.cli import add_bench_arguments, run_bench_cli
from .chaos.cli import add_chaos_arguments, run_chaos
from .core import MeasurementStudy, summarize_run
from .experiments import figures, tables
from .experiments.runner import ExperimentConfig, run_experiment
from .faults import FaultPlan, FaultSpecError
from .lint.cli import add_lint_arguments, run_lint
from .reporting import (render_boxes, render_campaign_health,
                        render_fault_summary, render_parallel_stats,
                        render_table)
from .sanity import (CHECK_MODES, DEFAULT_EVENT_BUDGET, run_campaign,
                     sweep_configs)

__all__ = ["main"]

FIGURES = {
    "table1": lambda args: tables.table1_corpus(),
    "table2": lambda args: tables.table2_tcp_variants(n_runs=args.runs),
    "fig03": lambda args: figures.fig03_plt_3g(n_runs=args.runs),
    "fig04": lambda args: figures.fig04_plt_wifi(n_runs=args.runs),
    "fig05": lambda args: figures.fig05_object_breakdown(n_runs=args.runs),
    "fig06": lambda args: figures.fig06_request_patterns(seed=args.seed),
    "fig07": lambda args: figures.fig07_test_pages(n_runs=args.runs,
                                                   seed=args.seed),
    "fig08": lambda args: figures.fig08_proxy_queueing(seed=args.seed),
    "fig09": lambda args: figures.fig09_throughput(n_runs=args.runs),
    "fig10": lambda args: figures.fig10_bytes_in_flight(seed=args.seed),
    "fig11": lambda args: figures.fig11_cwnd_run(seed=args.seed),
    "fig12": lambda args: figures.fig12_idle_zoom(seed=args.seed),
    "fig13": lambda args: figures.fig13_retx_bursts(seed=args.seed),
    "fig14": lambda args: figures.fig14_dch_pinning(n_runs=args.runs),
    "fig15": lambda args: figures.fig15_ss_after_idle(n_runs=args.runs),
    "fig16": lambda args: figures.fig16_plt_lte(n_runs=args.runs),
    "fig17": lambda args: figures.fig17_lte_cwnd(seed=args.seed),
    "sec61": lambda args: tables.sec61_multi_connection(n_runs=args.runs),
    "sec621": lambda args: tables.sec621_rtt_reset(n_runs=args.runs),
    "sec624": lambda args: tables.sec624_metrics_cache(n_runs=args.runs),
}


def _parse_sites(text: Optional[str]) -> Optional[List[int]]:
    """``--sites`` argument type: "5", "5,9,12", "3-6", or a mix."""
    if not text:
        return None
    sites: List[int] = []
    for part in text.split(","):
        part = part.strip()
        try:
            if "-" in part:
                lo_text, hi_text = part.split("-", 1)
                lo, hi = int(lo_text), int(hi_text)
            else:
                lo = hi = int(part)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"bad site entry {part!r} (expected N or LO-HI)")
        if lo > hi:
            raise argparse.ArgumentTypeError(
                f"empty site range {part!r} ({lo} > {hi})")
        sites.extend(range(lo, hi + 1))
    return sites


def _parse_faults(text: str) -> FaultPlan:
    """``--faults`` argument type: validate the spec at parse time."""
    try:
        return FaultPlan.parse(text)
    except FaultSpecError as exc:
        raise argparse.ArgumentTypeError(str(exc))


def _cmd_run(args) -> int:
    config = ExperimentConfig(protocol=args.protocol, network=args.network,
                              seed=args.seed,
                              site_ids=args.sites or list(range(1, 21)),
                              keepalive_ping=args.ping,
                              load_timeout=args.timeout,
                              think_time=args.think_time,
                              fault_plan=args.faults,
                              recovery=not args.no_recovery,
                              checks=args.check)
    result = run_experiment(config)
    rows = [[p.site_id, p.plt_or(config.load_timeout),
             "timeout" if p.timed_out else "ok", len(p.objects)]
            for p in result.pages]
    print(render_table(["site", "PLT (s)", "status", "objects"], rows,
                       title=f"{args.protocol} over {args.network}"))
    print()
    for key, value in summarize_run(result).items():
        print(f"  {key}: {value}")
    if result.fault_report is not None:
        print()
        print(render_fault_summary(result.fault_report))
    return 0


def _cmd_study(args) -> int:
    study = MeasurementStudy(network=args.network, n_runs=args.runs,
                             site_ids=args.sites, seed=args.seed,
                             base_config=ExperimentConfig(checks=args.check))
    result = study.run()
    sites = {site: {"http": result.site_boxes("http")[site],
                    "spdy": result.site_boxes("spdy")[site]}
             for site in result.site_boxes("http")}
    print(render_boxes(sites, title=f"PLT over {args.network} (seconds)"))
    print(f"\nmedian PLT: http={result.median_plt('http'):.2f}s "
          f"spdy={result.median_plt('spdy'):.2f}s")
    print(f"verdict: {result.verdict()}")
    return 0


def _budget_from_args(args):
    """A serial campaign :class:`ResourceBudget` from flags, or None."""
    from .guard import ResourceBudget
    return ResourceBudget.from_limits(
        max_wall_seconds=getattr(args, "max_wall_seconds", None),
        max_rss_mb=getattr(args, "max_rss_mb", None),
        max_events=getattr(args, "max_events", None),
        max_journal_mb=getattr(args, "max_journal_mb", None))


def _add_budget_arguments(parser) -> None:
    """Register the campaign-level resource-budget family."""
    group = parser.add_argument_group(
        "resource budget (serial runs; --max-rss-mb also guards workers)")
    group.add_argument(
        "--max-wall-seconds", type=float, default=None, metavar="SECONDS",
        help="stop starting new trials after this much wall-clock time; "
             "the cut-off is journaled as a classified "
             "resource-exhaustion record (exit 4, resumable)")
    group.add_argument(
        "--max-events", type=int, default=None, metavar="N",
        help="campaign-wide event ceiling across all trials "
             "(resource-exhaustion classification, exit 4)")
    group.add_argument(
        "--max-journal-mb", type=float, default=None, metavar="MIB",
        help="stop once the journal has grown past this many MiB "
             "(resource-exhaustion classification, exit 4)")


def _serial_exit_code(result, journal) -> int:
    """Serial campaigns' exit-code contract (130 > 4 > 1 > 0)."""
    from .parallel.cli import EXIT_RESOURCE
    if result.stopped_early:
        code = 130
    elif getattr(result, "exhausted", False) \
            or getattr(result, "exhausted_count", 0):
        code = EXIT_RESOURCE
    else:
        code = 1 if result.failed_count else 0
    if code in (4, 130) and journal:
        print(f"campaign incomplete: resume with --resume {journal}",
              file=sys.stderr)
    return code


def _cmd_campaign(args) -> int:
    from .parallel.cli import (graceful_interrupt, notify_stderr,
                               supervision_exit_code)
    from .sanity import JournalFormatError

    journal = args.resume or args.journal
    base = ExperimentConfig(network=args.network, seed=args.seed,
                            site_ids=args.sites or list(range(1, 21)),
                            load_timeout=args.timeout,
                            think_time=args.think_time,
                            fault_plan=args.faults,
                            checks=args.check)
    protocols = [p.strip() for p in args.protocols.split(",") if p.strip()]
    configs = sweep_configs(base, args.runs, protocols=protocols)
    try:
        if args.workers > 0:
            from .parallel import run_parallel_campaign
            result = run_parallel_campaign(
                configs, journal_path=journal,
                resume=args.resume is not None,
                event_budget=args.event_budget,
                workers=args.workers,
                trial_timeout=args.trial_timeout,
                max_retries=args.max_retries,
                max_rss_mb=args.max_rss_mb,
                notify=notify_stderr)
        else:
            with graceful_interrupt() as should_stop:
                result = run_campaign(configs, journal_path=journal,
                                      resume=args.resume is not None,
                                      event_budget=args.event_budget,
                                      should_stop=should_stop,
                                      budget=_budget_from_args(args))
    except (FileNotFoundError, JournalFormatError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(render_campaign_health(result.records,
                                 journal_stats=result.journal_stats))
    if result.parallel is not None:
        print(render_parallel_stats(result.parallel))
    print()
    for condition, stats in sorted(result.aggregate().items()):
        line = "  ".join(f"{key}={value}" for key, value in stats.items())
        print(f"{condition}: {line}")
    if result.parallel is not None:
        code = supervision_exit_code(result, result.failed_count)
        if code in (3, 4, 130) and journal:
            print(f"campaign incomplete: resume with --resume {journal}",
                  file=sys.stderr)
        return code
    return _serial_exit_code(result, journal)


def _cmd_sector(args) -> int:
    from .experiments.population import (SectorConfig, aggregate_sector,
                                         run_sector_campaign)
    from .parallel.cli import (graceful_interrupt, notify_stderr,
                               supervision_exit_code)
    from .sanity import JournalFormatError

    journal = args.resume or args.journal
    try:
        config = SectorConfig(users=args.users, shard_size=args.shard_size,
                              protocol=args.protocol, network=args.network,
                              seed=args.seed, alpha=args.alpha)
    except ValueError as exc:
        print(f"sector: {exc}", file=sys.stderr)
        return 2
    try:
        if args.workers > 0:
            from .parallel import run_parallel_sector
            result = run_parallel_sector(
                config, journal_path=journal,
                resume=args.resume is not None,
                workers=args.workers,
                trial_timeout=args.trial_timeout,
                max_retries=args.max_retries,
                max_rss_mb=args.max_rss_mb,
                notify=notify_stderr)
        else:
            with graceful_interrupt() as should_stop:
                result = run_sector_campaign(
                    config, journal_path=journal,
                    resume=args.resume is not None,
                    should_stop=should_stop,
                    budget=_budget_from_args(args))
    except (FileNotFoundError, JournalFormatError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(render_campaign_health(result.records,
                                 journal_stats=result.journal_stats))
    if result.parallel is not None:
        print(render_parallel_stats(result.parallel))
    print()
    summary = aggregate_sector(result.records)
    print(f"sector: {config.users:,} users over {config.protocol}/"
          f"{config.network} ({config.n_shards} shards)")
    for metric in ("plt", "energy"):
        stats = summary.get(metric)
        if not stats:
            continue
        line = "  ".join(
            f"{key}={value}" if isinstance(value, int)
            else f"{key}={value:.3f}" if value is not None else f"{key}=-"
            for key, value in sorted(stats.items()))
        print(f"  {metric}: {line}")
    print(f"  shards: ok={summary['shards_ok']} "
          f"failed={summary['shards_failed']} "
          f"exhausted={summary['shards_exhausted']}")
    if result.parallel is not None:
        code = supervision_exit_code(result, result.failed_count)
        if code in (3, 4, 130) and journal:
            print(f"campaign incomplete: resume with --resume {journal}",
                  file=sys.stderr)
        return code
    return _serial_exit_code(result, journal)


def _cmd_diff(args) -> int:
    import json

    from .chaos import (RELATIONS, Scenario, differential_report,
                        validate_entry)
    from .chaos.corpus import CorpusFormatError

    if args.scenario is not None:
        try:
            with open(args.scenario, "r", encoding="utf-8") as handle:
                data = json.load(handle)
            if "scenario" in data:   # a corpus entry: unwrap it
                validate_entry(data, name=args.scenario)
                data = data["scenario"]
            scenario = Scenario.from_dict(data)
            scenario.experiment_config()  # validate early
        except (OSError, json.JSONDecodeError, CorpusFormatError,
                ValueError, TypeError) as exc:
            print(f"diff: cannot load scenario {args.scenario!r}: {exc}",
                  file=sys.stderr)
            return 2
    else:
        config = {}
        if args.network:
            config["network"] = args.network
        if args.sites:
            config["site_ids"] = args.sites
        scenario = Scenario(
            seed=args.seed,
            faults=args.faults.to_spec() if args.faults else None,
            config=config)

    report = differential_report(scenario, args.relation,
                                 event_budget=args.event_budget)
    _, _, _, blurb = RELATIONS[args.relation]
    side_a, side_b = report["a"], report["b"]

    def label(side):
        parts = [f"{k}={v}" for k, v in sorted(side["tcp"].items())]
        for key in ("protocol", "keepalive_ping"):
            if key in side["config"]:
                parts.append(f"{key}={side['config'][key]}")
        parts.append(f"checks={side['checks']}")
        return " ".join(parts)

    def fmt(value):
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    rows = []
    for key in ("digest", "differential_digest", "median_plt",
                "retransmissions", "spurious_retransmissions",
                "frto_undos"):
        rows.append([key, fmt(side_a[key]), fmt(side_b[key])])
    rows.append(["page_bytes",
                 fmt(sum(side_a["page_bytes"].values())),
                 fmt(sum(side_b["page_bytes"].values()))])
    rows.append(["conservation_residuals",
                 fmt(sum(abs(v) for r in side_a["link_residuals"].values()
                         for v in r)),
                 fmt(sum(abs(v) for r in side_b["link_residuals"].values()
                         for v in r))])
    print(render_table(["metric", f"A: {label(side_a)}",
                        f"B: {label(side_b)}"], rows,
                       title=f"relation {args.relation}: {blurb}"))
    print()
    if report["violation"]:
        print(f"RELATION VIOLATED: {report['violation']}")
        return 1
    print("relation holds")
    return 0


def _cmd_figure(args) -> int:
    generator = FIGURES.get(args.name)
    if generator is None:
        print(f"unknown figure {args.name!r}; choose from "
              f"{', '.join(sorted(FIGURES))}", file=sys.stderr)
        return 2
    data = generator(args)
    _print_dataset(args.name, data)
    return 0


def _print_dataset(name: str, data: dict) -> None:
    print(f"=== {name} ===")
    if "sites" in data and isinstance(data["sites"], dict):
        first = next(iter(data["sites"].values()), None)
        if isinstance(first, dict) and "http" in first \
                and "median" in str(first.get("http", {})):
            try:
                print(render_boxes(data["sites"]))
                data = {k: v for k, v in data.items() if k != "sites"}
            except Exception:
                pass
    for key, value in data.items():
        if isinstance(value, (list, dict)) and len(str(value)) > 400:
            print(f"{key}: <{type(value).__name__}, "
                  f"{len(value)} entries>")
        else:
            print(f"{key}: {value}")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Towards a SPDY'ier Mobile Web?' "
                    "(CoNEXT 2013)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run one experiment")
    p_run.add_argument("--protocol", choices=["http", "spdy"],
                       default="http")
    p_run.add_argument("--network", choices=["3g", "lte", "wifi"],
                       default="3g")
    p_run.add_argument("--sites", type=_parse_sites,
                       help="e.g. 1-20 or 5,9,12")
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--ping", action="store_true",
                       help="keepalive ping (Figure 14)")
    p_run.add_argument("--timeout", type=float, default=55.0,
                       help="per-page load timeout in seconds (default 55)")
    p_run.add_argument("--think-time", type=float, default=60.0,
                       help="seconds between page visits (default 60)")
    p_run.add_argument("--faults", type=_parse_faults, default=None,
                       metavar="SPEC",
                       help="fault plan, e.g. "
                            "'blackout@120:5,burstloss:0.02,handover@200'")
    p_run.add_argument("--no-recovery", action="store_true",
                       help="disable stall retries and SPDY session "
                            "re-establishment (faults become fatal)")
    p_run.add_argument("--check", choices=list(CHECK_MODES), default=None,
                       help="runtime invariant checking (default: the "
                            "REPRO_CHECKS env var, else off)")
    p_run.set_defaults(func=_cmd_run)

    p_study = sub.add_parser("study", help="HTTP vs SPDY comparison")
    p_study.add_argument("--network", choices=["3g", "lte", "wifi"],
                         default="3g")
    p_study.add_argument("--sites", type=_parse_sites,
                         help="e.g. 1-20 or 5,9,12")
    p_study.add_argument("--runs", type=int, default=2)
    p_study.add_argument("--seed", type=int, default=0)
    p_study.add_argument("--check", choices=list(CHECK_MODES), default=None,
                         help="runtime invariant checking (default: the "
                              "REPRO_CHECKS env var, else off)")
    p_study.set_defaults(func=_cmd_study)

    p_camp = sub.add_parser(
        "campaign",
        help="crash-safe multi-run sweep with a resumable journal")
    p_camp.add_argument("--protocols", default="http,spdy",
                        help="comma-separated protocol list "
                             "(default http,spdy)")
    p_camp.add_argument("--network", choices=["3g", "lte", "wifi"],
                        default="3g")
    p_camp.add_argument("--sites", type=_parse_sites,
                        help="e.g. 1-20 or 5,9,12")
    p_camp.add_argument("--runs", type=int, default=2,
                        help="seeds per protocol (default 2)")
    p_camp.add_argument("--seed", type=int, default=0)
    p_camp.add_argument("--timeout", type=float, default=55.0,
                        help="per-page load timeout in seconds (default 55)")
    p_camp.add_argument("--think-time", type=float, default=60.0,
                        help="seconds between page visits (default 60)")
    p_camp.add_argument("--faults", type=_parse_faults, default=None,
                        metavar="SPEC", help="fault plan for every trial")
    p_camp.add_argument("--journal", metavar="PATH", default=None,
                        help="append-only JSONL trial journal")
    p_camp.add_argument("--resume", metavar="JOURNAL", default=None,
                        help="journal to resume: journaled (config, seed) "
                             "trials are skipped, the rest run")
    p_camp.add_argument("--check", choices=list(CHECK_MODES), default=None,
                        help="runtime invariant checking (default: the "
                             "REPRO_CHECKS env var, else off)")
    p_camp.add_argument("--event-budget", type=int,
                        default=DEFAULT_EVENT_BUDGET, metavar="N",
                        help="abort a trial after N simulator events "
                             "(wedge watchdog; default 20,000,000)")
    from .parallel.cli import add_parallel_arguments
    add_parallel_arguments(p_camp)
    _add_budget_arguments(p_camp)
    p_camp.set_defaults(func=_cmd_campaign)

    p_sector = sub.add_parser(
        "sector",
        help="bounded-memory population campaign: stream 10^5..10^6 "
             "simulated users through quantile/moment sketches")
    p_sector.add_argument("--users", type=int, default=100_000,
                          help="simulated population size (default 100,000)")
    p_sector.add_argument("--shard-size", type=int, default=10_000,
                          help="users per journaled shard trial "
                               "(default 10,000)")
    p_sector.add_argument("--protocol", choices=["http", "spdy"],
                          default="http")
    p_sector.add_argument("--network", choices=["3g", "lte", "wifi"],
                          default="3g")
    p_sector.add_argument("--seed", type=int, default=0)
    p_sector.add_argument("--alpha", type=float, default=0.01,
                          help="sketch relative-error bound (default 0.01)")
    p_sector.add_argument("--journal", metavar="PATH", default=None,
                          help="append-only JSONL shard journal")
    p_sector.add_argument("--resume", metavar="JOURNAL", default=None,
                          help="journal to resume: completed shards are "
                               "skipped, exhausted/missing ones re-run")
    add_parallel_arguments(p_sector)
    _add_budget_arguments(p_sector)
    p_sector.set_defaults(func=_cmd_sector)

    p_chaos = sub.add_parser(
        "chaos",
        help="chaos fuzzing: random fault scenarios, strict oracles, "
             "automatic shrinking, replayable repro corpus")
    add_chaos_arguments(p_chaos)
    p_chaos.set_defaults(func=run_chaos)

    from .chaos.differential import RELATION_NAMES
    from .chaos.oracles import CHAOS_EVENT_BUDGET
    p_diff = sub.add_parser(
        "diff",
        help="run one scenario under a metamorphic relation pair and "
             "print a side-by-side digest/metric report")
    p_diff.add_argument("relation", choices=list(RELATION_NAMES),
                        help="which paired comparison to run")
    p_diff.add_argument("--seed", type=int, default=0)
    p_diff.add_argument("--network", choices=["3g", "lte", "wifi"],
                        default=None,
                        help="override the chaos baseline network (3g)")
    p_diff.add_argument("--sites", type=_parse_sites,
                        help="e.g. 1-20 or 5,9,12 (default: site 1)")
    p_diff.add_argument("--faults", type=_parse_faults, default=None,
                        metavar="SPEC",
                        help="fault plan applied to both sides of the pair")
    p_diff.add_argument("--scenario", metavar="FILE", default=None,
                        help="load the scenario (or a corpus entry) from "
                             "a JSON file instead of flags")
    p_diff.add_argument("--event-budget", type=int,
                        default=CHAOS_EVENT_BUDGET, metavar="N",
                        help="wedge watchdog: simulator events per run "
                             f"(default {CHAOS_EVENT_BUDGET:,})")
    p_diff.set_defaults(func=_cmd_diff)

    p_bench = sub.add_parser(
        "bench",
        help="time canonical workloads (events/sec, pages/sec, figure "
             "sweep) and write BENCH_<rev>.json with determinism digests")
    add_bench_arguments(p_bench)
    p_bench.set_defaults(func=run_bench_cli)

    p_lint = sub.add_parser(
        "lint",
        help="AST-based determinism & units static analysis")
    add_lint_arguments(p_lint)
    p_lint.set_defaults(func=run_lint)

    p_fig = sub.add_parser("figure", help="regenerate a paper figure/table")
    p_fig.add_argument("name", help=f"one of: {', '.join(sorted(FIGURES))}")
    p_fig.add_argument("--runs", type=int, default=1)
    p_fig.add_argument("--seed", type=int, default=0,
                       help="RNG seed for generators that accept one")
    p_fig.set_defaults(func=_cmd_figure)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
