"""ASCII rendering of the figure/table datasets.

The benches print these renderings so a reproduction run leaves a
human-readable record (the same rows/series the paper plots) without
any plotting dependency.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

__all__ = ["render_table", "render_boxes", "render_series", "render_cdf",
           "render_bar", "render_fault_summary", "render_campaign_health",
           "render_chaos_summary", "render_parallel_stats",
           "format_seconds"]


def render_parallel_stats(stats: Dict[str, object]) -> str:
    """One-line supervision summary for a ``--workers`` campaign.

    Quiet runs stay quiet: counters that stayed zero are omitted, so a
    healthy campaign prints just the worker count.
    """
    parts = [f"workers={stats.get('workers', 0)}"]
    for key in ("restarts", "retries", "infra_failures", "timeouts",
                "lost", "rss_kills", "exhausted"):
        value = int(stats.get(key, 0) or 0)
        if value:
            parts.append(f"{key}={value}")
    if stats.get("drained"):
        parts.append("drained")
    return "supervision: " + " ".join(parts)


def format_seconds(value) -> str:
    if value is None:
        return "-"
    return f"{value:.2f}s"


def render_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "") -> str:
    """Fixed-width table with right-aligned numeric cells."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.2f}"
    return str(value)


def render_boxes(sites: Dict[int, dict], title: str = "",
                 unit_scale: float = 1.0, unit: str = "s") -> str:
    """Figure 3/16-style: per-site box stats for both protocols."""
    headers = ["site", "http p25", "http med", "http p75", "http mean",
               "spdy p25", "spdy med", "spdy p75", "spdy mean", "winner"]
    rows = []
    for site in sorted(sites):
        h, s = sites[site]["http"], sites[site]["spdy"]
        winner = "spdy" if s["mean"] < h["mean"] else "http"
        rows.append([site] + [
            x * unit_scale for x in
            (h["p25"], h["median"], h["p75"], h["mean"],
             s["p25"], s["median"], s["p75"], s["mean"])] + [winner])
    return render_table(headers, rows, title=title)


def render_series(series: List[Tuple[float, float]], width: int = 64,
                  height: int = 12, title: str = "") -> str:
    """Sparkline-ish ASCII plot of a (t, value) series."""
    if not series:
        return f"{title}\n(empty series)"
    times = [t for t, _ in series]
    values = [v for _, v in series]
    t0, t1 = min(times), max(times)
    vmax = max(values) or 1.0
    columns = [0.0] * width
    counts = [0] * width
    span = (t1 - t0) or 1.0
    for t, v in series:
        idx = min(width - 1, int((t - t0) / span * width))
        columns[idx] += v
        counts[idx] += 1
    avg = [c / n if n else 0.0 for c, n in zip(columns, counts)]
    grid = []
    for level in range(height, 0, -1):
        threshold = vmax * level / height
        grid.append("".join("#" if v >= threshold else " " for v in avg))
    lines = [title] if title else []
    lines.append(f"max={vmax:.1f}")
    lines.extend("|" + row for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f" t={t0:.0f}s{' ' * (width - 18)}t={t1:.0f}s")
    return "\n".join(lines)


def render_cdf(cdfs: Dict[str, List[Tuple[float, float]]], width: int = 60,
               title: str = "", xmax: float = None) -> str:
    """Figure 14-style CDF comparison: one row per decile per series."""
    lines = [title] if title else []
    for name, points in cdfs.items():
        if not points:
            continue
        deciles = []
        for frac in (0.1, 0.25, 0.5, 0.75, 0.9):
            value = next((v for v, f in points if f >= frac), points[-1][0])
            deciles.append(f"p{int(frac * 100)}={value:.1f}")
        lines.append(f"{name:>22}: " + "  ".join(deciles))
    return "\n".join(lines)


def render_bar(items: Dict[str, float], width: int = 40,
               title: str = "", unit: str = "") -> str:
    """Horizontal bar chart for scalar comparisons."""
    lines = [title] if title else []
    if not items:
        return "\n".join(lines + ["(no data)"])
    vmax = max(abs(v) for v in items.values()) or 1.0
    for name, value in items.items():
        bar = "#" * max(1, int(abs(value) / vmax * width))
        lines.append(f"{name:>26} {bar} {value:.2f}{unit}")
    return "\n".join(lines)


def render_fault_summary(report: Dict[str, object],
                         max_log_lines: int = 12) -> str:
    """Human-readable rendering of a FaultInjector report dict."""
    if not report:
        return "faults: none"
    counters = report.get("counters", {})
    applied = ", ".join(f"{kind}={count}" for kind, count in counters.items()
                        if count) or "none"
    lines = [f"fault plan: {report.get('plan', '')}",
             f"faults applied: {applied} "
             f"(connections reset: {report.get('connections_reset', 0)})"]
    log = report.get("log", [])
    for entry in log[:max_log_lines]:
        lines.append(f"  {entry}")
    if len(log) > max_log_lines:
        lines.append(f"  ... {len(log) - max_log_lines} more")
    return "\n".join(lines)


def render_campaign_health(records: Sequence[Dict[str, object]],
                           max_failure_lines: int = 8,
                           journal_stats: Dict[str, object] = None) -> str:
    """Per-condition health table for a campaign's journal records.

    ``journal_stats`` (a :meth:`CampaignJournal.stats` dict) adds a
    journal-health line: I/O errors retried, degraded appends buffered
    in the in-memory ring, ring records flushed back or dropped, torn
    tails truncated, and — from the load side — torn or corrupt lines
    salvaged around at resume.  Quiet journals stay quiet.
    """
    trials = [r for r in records if r.get("kind") == "trial"]
    if not trials:
        extra = _journal_health_line(journal_stats)
        return "campaign: no trials" + (f"\n{extra}" if extra else "")
    by_key: Dict[str, Dict[str, int]] = {}
    for record in trials:
        key = f"{record.get('protocol', '?')}/{record.get('network', '?')}"
        bucket = by_key.setdefault(
            key, {"trials": 0, "ok": 0, "failed": 0, "resumed": 0,
                  "violations": 0, "exhausted": 0})
        bucket["trials"] += 1
        failure = record.get("failure")
        if isinstance(failure, dict) \
                and failure.get("kind") == "resource-exhaustion":
            bucket["exhausted"] += 1
        bucket["ok" if record.get("status") == "ok" else "failed"] += 1
        if record.get("resumed"):
            bucket["resumed"] += 1
        bucket["violations"] += int(record.get("violations", 0) or 0)
    headers = ["condition", "trials", "ok", "failed", "exhausted",
               "resumed", "violations"]
    rows = [[key, b["trials"], b["ok"], b["failed"], b["exhausted"],
             b["resumed"], b["violations"]] for key, b in sorted(
                 by_key.items())]
    lines = [render_table(headers, rows, title="campaign health")]
    health = _journal_health_line(journal_stats)
    if health:
        lines.append(health)
    failures = [r for r in trials if r.get("status") != "ok"]
    for record in failures[:max_failure_lines]:
        failure = record.get("failure") or {}
        lines.append(f"  seed={record.get('seed')} "
                     f"{failure.get('kind', 'exception')}: "
                     f"{failure.get('message', '?')}")
    if len(failures) > max_failure_lines:
        lines.append(f"  ... {len(failures) - max_failure_lines} more failures")
    return "\n".join(lines)


def _journal_health_line(stats) -> str:
    """One ``journal:`` line when the journal saw trouble, else ''."""
    if not stats:
        return ""
    parts = []
    for key in ("io_errors", "io_retries", "degraded_appends",
                "ring_buffered", "ring_flushed", "ring_dropped",
                "torn_repairs"):
        value = int(stats.get(key, 0) or 0)
        if value:
            parts.append(f"{key}={value}")
    if stats.get("degraded"):
        parts.append("DEGRADED (records buffered in memory, not on disk)")
    load = stats.get("load") or {}
    for key, label in (("torn_tail", "torn tails salvaged"),
                       ("corrupt_lines", "corrupt lines skipped")):
        value = int(load.get(key, 0) or 0)
        if value:
            parts.append(f"{label}={value}")
    if not parts:
        return ""
    return "journal: " + " ".join(parts)


def render_chaos_summary(records: Sequence[Dict[str, object]],
                         corpus_paths: Sequence[str] = (),
                         max_failure_lines: int = 8) -> str:
    """Health report for a chaos campaign's journal records."""
    trials = [r for r in records if r.get("kind") == "chaos-trial"]
    if not trials:
        return "chaos: no trials"
    failed = [r for r in trials if r.get("status") == "failed"]
    resumed = sum(1 for r in trials if r.get("resumed"))
    lines = [f"chaos campaign: trials={len(trials)} "
             f"ok={len(trials) - len(failed)} failed={len(failed)} "
             f"resumed={resumed}"]
    by_kind: Dict[str, int] = {}
    shrink_in = shrink_out = attempts = 0
    for record in failed:
        failure = record.get("failure") or {}
        kind = str(failure.get("status", "exception"))
        by_kind[kind] = by_kind.get(kind, 0) + 1
        shrunk = record.get("shrunk") or {}
        shrink_in += int(shrunk.get("initial_events", 0) or 0)
        shrink_out += int(shrunk.get("final_events", 0) or 0)
        attempts += int(shrunk.get("attempts", 0) or 0)
    if by_kind:
        kinds = "  ".join(f"{kind}={count}"
                          for kind, count in sorted(by_kind.items()))
        lines.append(f"failures by kind: {kinds}")
        lines.append(f"shrink: {shrink_in} fault events -> {shrink_out} "
                     f"minimal ({attempts} oracle runs)")
    for record in failed[:max_failure_lines]:
        failure = record.get("failure") or {}
        shrunk = record.get("shrunk") or {}
        spec = shrunk.get("faults", record.get("faults"))
        lines.append(f"  #{record.get('index')} "
                     f"{failure.get('status', '?')} "
                     f"seed={record.get('seed')} faults={spec!r}")
        if failure.get("message"):
            lines.append(f"      {failure['message']}")
    if len(failed) > max_failure_lines:
        lines.append(f"  ... {len(failed) - max_failure_lines} "
                     f"more failures")
    for path in corpus_paths:
        lines.append(f"  repro written: {path}")
    return "\n".join(lines)
