"""Plot-free rendering of figure/table datasets as ASCII."""

from .render import (format_seconds, render_bar, render_boxes,
                     render_campaign_health, render_cdf,
                     render_chaos_summary, render_fault_summary,
                     render_parallel_stats, render_series, render_table)

__all__ = ["format_seconds", "render_bar", "render_boxes",
           "render_campaign_health", "render_cdf", "render_chaos_summary",
           "render_fault_summary", "render_parallel_stats",
           "render_series", "render_table"]
