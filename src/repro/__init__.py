"""repro — a reproduction of "Towards a SPDY'ier Mobile Web?" (CoNEXT 2013).

A discrete-event network laboratory that rebuilds the paper's entire
measurement apparatus in Python: a TCP implementation (CUBIC/Reno, RFC
6298 RTO, SACK, F-RTO, idle behaviour, metrics caching), 3G/LTE RRC
state machines, HTTP/1.1 and SPDY with real header compression, a
Chrome-like browser model, Squid-like and SPDY proxies, origin servers,
and the experiment harness that regenerates every figure and table in
the paper's evaluation.

Quick start::

    from repro import MeasurementStudy
    result = MeasurementStudy(network="3g", n_runs=2, site_ids=[9, 12]).run()
    print(result.verdict())

See ``examples/`` for runnable scenarios and ``benchmarks/`` for the
per-figure reproductions.
"""

from .core import (MeasurementStudy, StudyResult, correlate_idle_retransmissions,
                   evaluate_remedies, reset_rtt_after_idle_config,
                   summarize_run)
from .experiments import (ExperimentConfig, RunResult, Testbed, figures,
                          run_experiment, run_many, tables)
from .tcp import TcpConfig, TcpProbe
from .web import build_corpus, build_page, build_test_page

__version__ = "1.0.0"

__all__ = [
    "MeasurementStudy", "StudyResult", "correlate_idle_retransmissions",
    "evaluate_remedies", "reset_rtt_after_idle_config", "summarize_run",
    "ExperimentConfig", "RunResult", "Testbed", "figures", "run_experiment",
    "run_many", "tables", "TcpConfig", "TcpProbe", "build_corpus",
    "build_page", "build_test_page", "__version__",
]
