"""The paper's §6 remedies as ready-to-use configurations.

Each remedy returns an :class:`~repro.experiments.ExperimentConfig`
(or TcpConfig) pre-set to the corresponding intervention, plus
:func:`evaluate_remedies` which runs the whole §6 comparison in one call.
"""

from __future__ import annotations

import statistics
from typing import Dict, List, Optional

from ..experiments.runner import ExperimentConfig, run_many
from ..tcp import TcpConfig

__all__ = ["reset_rtt_after_idle_config", "no_slow_start_after_idle_config",
           "no_metrics_cache_config", "multi_connection_config",
           "late_binding_config", "dch_pinning_config", "frto_config",
           "evaluate_remedies"]


def reset_rtt_after_idle_config(conservative_rto: float = 3.0) -> TcpConfig:
    """§6.2.1 — the paper's recommendation: after an idle period, discard
    the RTT estimate along with the congestion estimate, so the RTO
    ("of multiple seconds") outlasts the radio promotion delay."""
    return TcpConfig(reset_rtt_after_idle=True,
                     idle_rto_reset_value=conservative_rto)


def no_slow_start_after_idle_config() -> TcpConfig:
    """§6.2.2 — disable the RFC 2861 cwnd restart (Figure 15's experiment)."""
    return TcpConfig(slow_start_after_idle=False)


def no_metrics_cache_config() -> TcpConfig:
    """§6.2.4 — tcp_no_metrics_save: stop inheriting damaged statistics."""
    return TcpConfig(use_metrics_cache=False)


def multi_connection_config(n_sessions: int = 20) -> ExperimentConfig:
    """§6.1 — 20 SPDY connections via PAC-file port spreading (static
    binding; the paper found this alone does not help)."""
    return ExperimentConfig(protocol="spdy", n_spdy_sessions=n_sessions,
                            late_binding=False)


def late_binding_config(n_sessions: int = 20) -> ExperimentConfig:
    """§6.1's missing piece — responses return on any *available*
    connection, avoiding ones stalled by spurious timeouts."""
    return ExperimentConfig(protocol="spdy", n_spdy_sessions=n_sessions,
                            late_binding=True)


def frto_config(enabled: bool = True) -> TcpConfig:
    """§5.3's counterweight — RFC 5682 F-RTO detects the spurious RTOs
    that radio promotion delays provoke and undoes the cwnd collapse.
    On by default (as in Linux); ``frto_config(False)`` is the ablation
    axis the differential matrix uses to price spurious timeouts."""
    return TcpConfig(frto=enabled)


def dch_pinning_config() -> ExperimentConfig:
    """§5.6.1 / Figure 14 — continual pings keep the radio in DCH
    (effective but wasteful of radio resources and battery)."""
    return ExperimentConfig(keepalive_ping=True)


def evaluate_remedies(protocol: str = "spdy", network: str = "3g",
                      n_runs: int = 2,
                      site_ids: Optional[List[int]] = None) -> Dict[str, dict]:
    """Run baseline + every remedy; return PLT/retransmission comparison."""
    site_ids = site_ids or list(range(1, 21))
    conditions: Dict[str, ExperimentConfig] = {
        "baseline": ExperimentConfig(protocol=protocol, network=network,
                                     site_ids=site_ids),
        "reset-rtt-after-idle": ExperimentConfig(
            protocol=protocol, network=network, site_ids=site_ids,
            tcp=reset_rtt_after_idle_config(),
            client_tcp=reset_rtt_after_idle_config()),
        "no-slow-start-after-idle": ExperimentConfig(
            protocol=protocol, network=network, site_ids=site_ids,
            tcp=no_slow_start_after_idle_config()),
        "no-metrics-cache": ExperimentConfig(
            protocol=protocol, network=network, site_ids=site_ids,
            tcp=no_metrics_cache_config()),
        "dch-pinning": ExperimentConfig(
            protocol=protocol, network=network, site_ids=site_ids,
            keepalive_ping=True),
        # Not a remedy but the ablation that prices spurious timeouts:
        # how much of the baseline's health does F-RTO's undo account for?
        "frto-off": ExperimentConfig(
            protocol=protocol, network=network, site_ids=site_ids,
            tcp=frto_config(False), client_tcp=frto_config(False)),
    }
    if protocol == "spdy":
        conditions["multi-connection"] = multi_connection_config().with_overrides(
            network=network, site_ids=site_ids)
        conditions["late-binding"] = late_binding_config().with_overrides(
            network=network, site_ids=site_ids)

    results: Dict[str, dict] = {}
    for name, config in conditions.items():
        runs = run_many(config, n_runs)
        plts = [page.plt_or(config.load_timeout)
                for run in runs for page in run.pages]
        results[name] = {
            "median_plt": statistics.median(plts),
            "mean_plt": statistics.mean(plts),
            "retransmissions": statistics.mean(
                r.total_retransmissions() for r in runs),
            "spurious": statistics.mean(
                r.spurious_retransmissions() for r in runs),
            "energy_mj": statistics.mean(
                r.radio_energy_mj() for r in runs),
        }
    return results
