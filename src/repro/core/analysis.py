"""Cross-layer analysis: connecting radio state to TCP behaviour.

The paper's analytical contribution is tying three event streams
together — RRC state transitions, TCP idle restarts, and (spurious)
retransmissions — into the causal chain of §5.5:

    idle period -> radio demotion -> data after idle -> promotion delay
    -> RTO < promotion delay -> spurious retransmission
    -> cwnd collapse + ssthresh slash -> congestion-avoidance crawl.

:func:`correlate_idle_retransmissions` quantifies that chain for a run;
:func:`summarize_run` produces the per-run health report used by the
examples and EXPERIMENTS.md.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["IdleEpisode", "CrossLayerReport", "correlate_idle_retransmissions",
           "summarize_run"]

#: A retransmission within this window after an idle restart or promotion
#: is attributed to the idle->active transition.
ATTRIBUTION_WINDOW = 5.0


@dataclass
class IdleEpisode:
    """One idle restart and the damage that followed it."""

    time: float
    conn_id: str
    idle_time: float
    promotion_nearby: bool
    retransmissions: int = 0
    spurious: int = 0
    ssthresh_before: Optional[float] = None
    ssthresh_after: Optional[float] = None

    @property
    def damaged(self) -> bool:
        """Did this idle episode end in a collapsed ssthresh?"""
        return (self.spurious > 0
                and self.ssthresh_before is not None
                and self.ssthresh_after is not None
                and self.ssthresh_after < self.ssthresh_before)


@dataclass
class CrossLayerReport:
    """Aggregated cross-layer accounting for one run."""

    episodes: List[IdleEpisode] = field(default_factory=list)
    total_retransmissions: int = 0
    total_spurious: int = 0
    idle_attributed_spurious: int = 0
    promotions: int = 0
    demotions: int = 0

    @property
    def spurious_fraction(self) -> float:
        if self.total_retransmissions == 0:
            return 0.0
        return self.total_spurious / self.total_retransmissions

    @property
    def idle_attribution_fraction(self) -> float:
        """Fraction of spurious retransmissions near an idle restart."""
        if self.total_spurious == 0:
            return 0.0
        return self.idle_attributed_spurious / self.total_spurious

    @property
    def damaged_episodes(self) -> int:
        return sum(1 for e in self.episodes if e.damaged)


def _client_facing(conn_id: str) -> bool:
    """True for proxy<->device connections (the access path)."""
    return ":8080-" in conn_id or ":8443-" in conn_id


def correlate_idle_retransmissions(probe, machine=None,
                                   conn_filter=_client_facing
                                   ) -> CrossLayerReport:
    """Build the cross-layer report from a TcpProbe (+ optional RRC machine).

    ``probe`` is the proxy-side :class:`~repro.tcp.trace.TcpProbe`;
    ``machine`` the device's RRC state machine, used to check that idle
    restarts coincide with radio promotions.  ``conn_filter`` restricts
    the analysis to the connections that actually cross the radio
    (by default, the proxy's client-facing ports).
    """
    retransmissions = [r for r in probe.retransmissions
                       if conn_filter(r.conn_id)]
    idle_restarts = [e for e in probe.idle_restarts
                     if conn_filter(e.conn_id)]
    report = CrossLayerReport()
    report.total_retransmissions = len(retransmissions)
    report.total_spurious = sum(1 for r in retransmissions if r.spurious)
    if machine is not None:
        report.promotions = machine.promotions
        report.demotions = machine.demotions
        promo_times = [t for t, s in machine.state_log]
    else:
        promo_times = []

    for restart in idle_restarts:
        episode = IdleEpisode(
            time=restart.time, conn_id=restart.conn_id,
            idle_time=restart.idle_time,
            promotion_nearby=any(
                0 <= t - restart.time <= ATTRIBUTION_WINDOW
                for t in promo_times))
        for retx in retransmissions:
            if retx.conn_id != restart.conn_id:
                continue
            if 0 <= retx.time - restart.time <= ATTRIBUTION_WINDOW:
                episode.retransmissions += 1
                if retx.spurious:
                    episode.spurious += 1
        samples = [s for s in probe.samples if s.conn_id == restart.conn_id]
        before = [s for s in samples if s.time <= restart.time]
        after = [s for s in samples
                 if restart.time < s.time <= restart.time + ATTRIBUTION_WINDOW]
        if before:
            episode.ssthresh_before = before[-1].ssthresh
        if after:
            episode.ssthresh_after = min(s.ssthresh for s in after)
        report.episodes.append(episode)

    report.idle_attributed_spurious = sum(
        1 for retx in retransmissions if retx.spurious and any(
            0 <= retx.time - e.time <= ATTRIBUTION_WINDOW
            for e in report.episodes if e.conn_id == retx.conn_id))
    return report


def summarize_run(run) -> Dict[str, object]:
    """One-stop health summary of a :class:`~repro.experiments.RunResult`."""
    plts = list(run.plts_by_site().values())
    report = correlate_idle_retransmissions(run.testbed.proxy_probe,
                                            run.testbed.radio)
    summary: Dict[str, object] = {
        "protocol": run.config.protocol,
        "network": run.config.network,
        "pages": len(run.pages),
        "median_plt": statistics.median(plts) if plts else None,
        "mean_plt": statistics.mean(plts) if plts else None,
        "timeouts": sum(1 for p in run.pages if p.timed_out),
        "retransmissions": run.total_retransmissions(),
        "spurious_retransmissions": run.spurious_retransmissions(),
        "spurious_fraction": report.spurious_fraction,
        "idle_episodes": len(report.episodes),
        "damaged_idle_episodes": report.damaged_episodes,
        "radio_promotions": report.promotions,
        "radio_demotions": report.demotions,
        "radio_energy_mj": run.radio_energy_mj(),
        "object_retries": sum(getattr(p, "retries", 0) for p in run.pages),
    }
    fault_report = getattr(run, "fault_report", None)
    if fault_report:
        summary["faults_applied"] = fault_report["events_applied"]
        summary["fault_connections_reset"] = fault_report["connections_reset"]
    sanity_report = getattr(run, "sanity_report", None)
    if sanity_report:
        summary["invariant_checks"] = sanity_report["checks_run"]
        summary["invariant_violations"] = len(sanity_report["violations"])
    return summary
