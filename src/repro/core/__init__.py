"""The paper's contribution layer: study orchestration, analysis, remedies."""

from .analysis import (CrossLayerReport, IdleEpisode,
                       correlate_idle_retransmissions, summarize_run)
from .remedies import (dch_pinning_config, evaluate_remedies,
                       late_binding_config, multi_connection_config,
                       no_metrics_cache_config, no_slow_start_after_idle_config,
                       reset_rtt_after_idle_config)
from .study import MeasurementStudy, StudyResult

__all__ = [
    "CrossLayerReport", "IdleEpisode", "correlate_idle_retransmissions",
    "summarize_run", "dch_pinning_config", "evaluate_remedies",
    "late_binding_config", "multi_connection_config",
    "no_metrics_cache_config", "no_slow_start_after_idle_config",
    "reset_rtt_after_idle_config", "MeasurementStudy", "StudyResult",
]
