"""The measurement study, end to end.

:class:`MeasurementStudy` is the library's headline entry point: it
orchestrates the paper's full §3 procedure — both protocols over a
chosen access network, repeated runs, fixed site order — and produces
the comparison that Figure 3 / Figure 4 / Figure 16 plot, together with
the cross-layer analysis of §5.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..experiments.runner import ExperimentConfig, RunResult, run_many
from ..metrics import box_stats
from .analysis import correlate_idle_retransmissions, summarize_run

__all__ = ["MeasurementStudy", "StudyResult"]


@dataclass
class StudyResult:
    """Everything a study produced, with the paper-style comparisons."""

    network: str
    runs: Dict[str, List[RunResult]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def plt_samples(self, protocol: str) -> Dict[int, List[float]]:
        """site_id -> PLT samples across this protocol's runs."""
        samples: Dict[int, List[float]] = {}
        for run in self.runs[protocol]:
            for site, plt in run.plts_by_site().items():
                samples.setdefault(site, []).append(plt)
        return samples

    def site_boxes(self, protocol: str) -> Dict[int, dict]:
        """Figure 3-style per-site box statistics."""
        return {site: box_stats(values).__dict__
                for site, values in self.plt_samples(protocol).items()}

    def median_plt(self, protocol: str) -> float:
        values = [v for vs in self.plt_samples(protocol).values() for v in vs]
        return statistics.median(values)

    def spdy_wins(self) -> int:
        """Number of sites where SPDY's mean PLT beats HTTP's."""
        http = {s: statistics.mean(v)
                for s, v in self.plt_samples("http").items()}
        spdy = {s: statistics.mean(v)
                for s, v in self.plt_samples("spdy").items()}
        return sum(1 for s in http if spdy.get(s, float("inf")) < http[s])

    def verdict(self) -> str:
        """The study's one-line conclusion, in the paper's terms."""
        total = len(self.plt_samples("http"))
        wins = self.spdy_wins()
        if wins >= 0.7 * total:
            return "spdy-clearly-better"
        if wins <= 0.3 * total:
            return "http-clearly-better"
        return "no-clear-winner"

    def cross_layer_reports(self, protocol: str):
        return [correlate_idle_retransmissions(r.testbed.proxy_probe,
                                               r.testbed.radio)
                for r in self.runs[protocol]]

    def summaries(self) -> List[dict]:
        return [summarize_run(run)
                for runs in self.runs.values() for run in runs]


class MeasurementStudy:
    """Run the paper's HTTP-vs-SPDY comparison on one access network.

    Example
    -------
    >>> from repro import MeasurementStudy
    >>> study = MeasurementStudy(network="3g", n_runs=2, site_ids=[9, 12])
    >>> result = study.run()
    >>> result.verdict()          # doctest: +SKIP
    'no-clear-winner'
    """

    def __init__(self, network: str = "3g", n_runs: int = 3,
                 site_ids: Optional[List[int]] = None, seed: int = 0,
                 base_config: Optional[ExperimentConfig] = None):
        self.network = network
        self.n_runs = n_runs
        self.site_ids = site_ids or list(range(1, 21))
        self.seed = seed
        self.base_config = base_config or ExperimentConfig()

    def run(self) -> StudyResult:
        """Execute both protocols, alternating seeds exactly like the
        paper alternated its nightly HTTP and SPDY runs."""
        result = StudyResult(network=self.network)
        for protocol in ("http", "spdy"):
            config = self.base_config.with_overrides(
                protocol=protocol, network=self.network,
                site_ids=self.site_ids, seed=self.seed)
            result.runs[protocol] = run_many(config, self.n_runs)
        return result
